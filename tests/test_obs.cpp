// Observability layer tests: metrics registry semantics, exporter output
// pinned as golden strings, and the critical-path analyzer on hand-built
// three-rank timelines where the correct chain is known by construction.
//
// The exporter goldens are inline (not files): the outputs are small and
// a diff in the test source is easier to review than a binary-ish blob.
// The engine-backed tests pin the tentpole acceptance criterion — the
// recovered chain tiles the makespan, so per-phase critical-path seconds
// sum to the ledger's critical-path time within 1e-9.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "machine/presets.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "support/assert.hpp"
#include "vmpi/trace.hpp"

namespace {

using namespace canb;
using vmpi::Phase;

// --- MetricsRegistry ---------------------------------------------------------

TEST(ObsMetrics, HistogramBucketUpperBoundsAreInclusive) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // == 1: le semantics put it in the first bucket
  h.observe(1.5);   // <= 2
  h.observe(2.0);   // == 2
  h.observe(4.0);   // == 4
  h.observe(4.01);  // overflow -> +Inf
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.01);
}

TEST(ObsMetrics, HistogramRejectsBadEdges) {
  EXPECT_THROW(obs::Histogram({}), PreconditionError);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), PreconditionError);
}

TEST(ObsMetrics, RegistrySeriesIdentityIsLabelOrderInsensitive) {
  obs::MetricsRegistry reg;
  reg.counter("m", {{"b", "2"}, {"a", "1"}}).inc(5);
  // Same label set, different insertion order: must resolve to the same series.
  reg.counter("m", {{"a", "1"}, {"b", "2"}}).inc(2);
  const auto& family = reg.families().at("m");
  ASSERT_EQ(family.series.size(), 1u);
  EXPECT_EQ(std::get<obs::Counter>(family.series.begin()->second.metric).value(), 7u);
  EXPECT_EQ(obs::MetricsRegistry::label_string(family.series.begin()->second.labels),
            "{a=\"1\",b=\"2\"}");
}

TEST(ObsMetrics, RegistryRejectsFamilyTypeChange) {
  obs::MetricsRegistry reg;
  reg.counter("m").inc();
  EXPECT_THROW(reg.gauge("m"), PreconditionError);
  EXPECT_THROW(reg.histogram("m", {1.0}), PreconditionError);
}

// --- exporters: golden strings ----------------------------------------------

/// Small fixed registry every exporter golden uses: one histogram, one
/// labelled counter with help text, one label-less gauge.
obs::MetricsRegistry make_golden_registry() {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("canb_bytes", {1.0, 2.0}, {{"phase", "shift"}});
  h.observe(0.5);
  h.observe(1.0);
  h.observe(1.5);
  h.observe(3.0);
  reg.counter("canb_ops_total", {{"phase", "shift"}}, "ops help").inc(3);
  reg.gauge("canb_util").set(0.25);
  return reg;
}

TEST(ObsExport, PrometheusTextGolden) {
  const auto reg = make_golden_registry();
  const std::string expected =
      "# TYPE canb_bytes histogram\n"
      "canb_bytes_bucket{phase=\"shift\",le=\"1\"} 2\n"
      "canb_bytes_bucket{phase=\"shift\",le=\"2\"} 3\n"
      "canb_bytes_bucket{phase=\"shift\",le=\"+Inf\"} 4\n"
      "canb_bytes_sum{phase=\"shift\"} 6\n"
      "canb_bytes_count{phase=\"shift\"} 4\n"
      "# HELP canb_ops_total ops help\n"
      "# TYPE canb_ops_total counter\n"
      "canb_ops_total{phase=\"shift\"} 3\n"
      "# TYPE canb_util gauge\n"
      "canb_util 0.25\n";
  EXPECT_EQ(obs::to_prometheus(reg), expected);
}

TEST(ObsExport, MetricsJsonGolden) {
  const auto reg = make_golden_registry();
  obs::RunManifest manifest;
  manifest.machine = "testbox";
  // Pin the build block so the golden is environment-independent.
  manifest.compiler = "test-cc";
  manifest.git = "deadbeef";
  manifest.simd = "scalar";
  manifest.set("p", 3);
  std::ostringstream out;
  obs::write_metrics_json(out, reg, manifest);
  const std::string expected =
      "{\"schema_version\":3,\"kind\":\"metrics\","
      "\"manifest\":{\"tool\":\"canb\",\"machine\":\"testbox\","
      "\"build\":{\"compiler\":\"test-cc\",\"git\":\"deadbeef\",\"simd\":\"scalar\",\"schema\":3},"
      "\"config\":{\"p\":\"3\"}},"
      "\"metrics\":["
      "{\"name\":\"canb_bytes\",\"type\":\"histogram\",\"series\":["
      "{\"labels\":{\"phase\":\"shift\"},\"edges\":[1,2],\"counts\":[2,1,1],"
      "\"count\":4,\"sum\":6}]},"
      "{\"name\":\"canb_ops_total\",\"type\":\"counter\",\"help\":\"ops help\",\"series\":["
      "{\"labels\":{\"phase\":\"shift\"},\"value\":3}]},"
      "{\"name\":\"canb_util\",\"type\":\"gauge\",\"series\":["
      "{\"labels\":{},\"value\":0.25}]}"
      "]}\n";
  EXPECT_EQ(out.str(), expected);
}

obs::SpanSample make_sample(std::string label, Phase phase, int step, std::size_t p2p_end,
                            std::size_t coll_end, std::vector<double> clocks) {
  obs::SpanSample s;
  s.label = std::move(label);
  s.phase = phase;
  s.step = step;
  s.p2p_end = p2p_end;
  s.coll_end = coll_end;
  s.clocks = std::move(clocks);
  return s;
}

TEST(ObsExport, SpanCsvGolden) {
  obs::SpanTimeline timeline;
  timeline.add(make_sample("start", Phase::Other, -1, 0, 0, {0.0, 0.0}));
  timeline.add(make_sample("shift", Phase::Shift, 0, 0, 0, {1.5, 2.25}));
  std::ostringstream out;
  obs::write_span_csv(out, timeline);
  const std::string expected =
      "sample,step,label,phase,rank,clock_seconds\n"
      "0,-1,start,other,0,0\n"
      "0,-1,start,other,1,0\n"
      "1,0,shift,shift,0,1.5\n"
      "1,0,shift,shift,1,2.25\n";
  EXPECT_EQ(out.str(), expected);
}

// --- critical path: hand-built three-rank timelines --------------------------

/// Compute straggler: rank 1 burns 5 s in the compute phase, the shift
/// delivers its state to rank 0, and a closing reduce synchronizes all
/// clocks at 5.8 s. Every rank finishes simultaneously, so slack alone says
/// nothing — the chain must still attribute 5 of the 5.8 s to rank 1's
/// compute. The clock values mimic exactly what VirtualComm would produce
/// (receiver start = max(own, sender snapshot)).
TEST(ObsCriticalPath, ThreeRankComputeStragglerChain) {
  obs::SpanTimeline timeline;
  timeline.add(make_sample("start", Phase::Other, -1, 0, 0, {0.0, 0.0, 0.0}));
  timeline.add(make_sample("compute", Phase::Compute, 0, 0, 0, {1.0, 5.0, 2.0}));
  timeline.add(make_sample("shift", Phase::Shift, 0, 3, 0, {5.5, 5.5, 2.5}));
  timeline.add(make_sample("reduce", Phase::Reduce, 0, 3, 1, {5.8, 5.8, 5.8}));

  vmpi::TraceRecorder trace;
  trace.record_p2p(Phase::Shift, /*src=*/1, /*dst=*/0, 1024);
  trace.record_p2p(Phase::Shift, /*src=*/2, /*dst=*/1, 1024);
  trace.record_p2p(Phase::Shift, /*src=*/0, /*dst=*/2, 1024);
  trace.record_collective(Phase::Reduce, /*is_reduce=*/true, {0, 1, 2}, 512);

  const auto rep = obs::analyze_critical_path(timeline, &trace);
  EXPECT_EQ(rep.end_rank, 0);  // clock tie at 5.8; argmax keeps the lowest rank
  EXPECT_NEAR(rep.total, 5.8, 1e-12);

  ASSERT_EQ(rep.segments.size(), 3u);
  EXPECT_EQ(rep.segments[0].rank, 1);  // the straggler's compute leads the chain
  EXPECT_EQ(rep.segments[0].phase, Phase::Compute);
  EXPECT_DOUBLE_EQ(rep.segments[0].start, 0.0);
  EXPECT_DOUBLE_EQ(rep.segments[0].end, 5.0);
  EXPECT_EQ(rep.segments[1].rank, 0);  // rank 0 waits on the shift from rank 1
  EXPECT_EQ(rep.segments[1].phase, Phase::Shift);
  EXPECT_DOUBLE_EQ(rep.segments[1].start, 5.0);
  EXPECT_DOUBLE_EQ(rep.segments[1].end, 5.5);
  EXPECT_EQ(rep.segments[2].rank, 0);
  EXPECT_EQ(rep.segments[2].phase, Phase::Reduce);

  EXPECT_NEAR(rep.phase_seconds[static_cast<int>(Phase::Compute)], 5.0, 1e-12);
  EXPECT_NEAR(rep.phase_seconds[static_cast<int>(Phase::Shift)], 0.5, 1e-12);
  EXPECT_NEAR(rep.phase_seconds[static_cast<int>(Phase::Reduce)], 0.3, 1e-12);
  double phase_sum = 0.0;
  for (double s : rep.phase_seconds) phase_sum += s;
  EXPECT_NEAR(phase_sum, rep.total, 1e-9);

  EXPECT_EQ(rep.dominant_rank(), 1);
  ASSERT_EQ(rep.rank_path_seconds.size(), 3u);
  EXPECT_NEAR(rep.rank_path_seconds[1], 5.0, 1e-12);
  EXPECT_NEAR(rep.rank_path_seconds[0], 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(rep.rank_path_seconds[2], 0.0);
  for (double s : rep.slack) EXPECT_DOUBLE_EQ(s, 0.0);  // reduce synced everyone

  const auto text = obs::format_critical_path(rep);
  EXPECT_NE(text.find("dominant rank: 1"), std::string::npos);
  EXPECT_NE(text.find("compute=5.0"), std::string::npos);
}

/// Fault straggler on a link: rank 2's shift delivery into rank 0 arrives
/// late (retries in the trace), so the last-finishing rank 0 inherited its
/// finish time from rank 2 — the chain must hop to the *sender*, not stay
/// on the receiver that merely waited.
TEST(ObsCriticalPath, FaultedLinkAttributesSendingStraggler) {
  obs::SpanTimeline timeline;
  timeline.add(make_sample("start", Phase::Other, -1, 0, 0, {0.0, 0.0, 0.0}));
  timeline.add(make_sample("compute", Phase::Compute, 0, 0, 0, {1.0, 2.0, 3.0}));
  timeline.add(make_sample("shift", Phase::Shift, 0, 2, 0, {3.4, 2.1, 3.1}));

  vmpi::TraceRecorder trace;
  trace.record_p2p(Phase::Shift, /*src=*/2, /*dst=*/0, 2048, /*retries=*/2, /*timeouts=*/1);
  trace.record_p2p(Phase::Shift, /*src=*/0, /*dst=*/1, 2048);

  const auto rep = obs::analyze_critical_path(timeline, &trace);
  EXPECT_EQ(rep.end_rank, 0);
  EXPECT_NEAR(rep.total, 3.4, 1e-12);
  ASSERT_EQ(rep.segments.size(), 2u);
  EXPECT_EQ(rep.segments[0].rank, 2);  // straggling sender holds the path first
  EXPECT_EQ(rep.segments[0].phase, Phase::Compute);
  EXPECT_DOUBLE_EQ(rep.segments[0].end, 3.0);
  EXPECT_EQ(rep.segments[1].rank, 0);
  EXPECT_DOUBLE_EQ(rep.segments[1].start, 3.0);
  EXPECT_EQ(rep.dominant_rank(), 2);
  EXPECT_NEAR(rep.slack[1], 1.3, 1e-12);
  EXPECT_NEAR(rep.slack[2], 0.3, 1e-12);
}

/// Without a trace there is no dependency evidence: every span binds to the
/// walked rank itself, and the chain is pure per-rank attribution of the
/// end rank. The tiling identity must survive.
TEST(ObsCriticalPath, NullTraceBindsSelf) {
  obs::SpanTimeline timeline;
  timeline.add(make_sample("start", Phase::Other, -1, 0, 0, {0.0, 0.0, 0.0}));
  timeline.add(make_sample("compute", Phase::Compute, 0, 0, 0, {1.0, 5.0, 2.0}));
  timeline.add(make_sample("shift", Phase::Shift, 0, 3, 0, {5.5, 5.5, 2.5}));
  timeline.add(make_sample("reduce", Phase::Reduce, 0, 3, 1, {5.8, 5.8, 5.8}));

  const auto rep = obs::analyze_critical_path(timeline, nullptr);
  EXPECT_EQ(rep.end_rank, 0);
  EXPECT_NEAR(rep.total, 5.8, 1e-12);
  for (const auto& seg : rep.segments) EXPECT_EQ(seg.rank, 0);
  EXPECT_NEAR(rep.rank_path_seconds[0], 5.8, 1e-12);
  EXPECT_EQ(rep.dominant_rank(), 0);
}

TEST(ObsCriticalPath, NeedsTwoSamplesElseEmptyReport) {
  obs::SpanTimeline timeline;
  const auto empty = obs::analyze_critical_path(timeline, nullptr);
  EXPECT_EQ(empty.end_rank, -1);
  EXPECT_TRUE(empty.segments.empty());
  timeline.add(make_sample("start", Phase::Other, -1, 0, 0, {0.0}));
  const auto one = obs::analyze_critical_path(timeline, nullptr);
  EXPECT_EQ(one.end_rank, -1);
  EXPECT_DOUBLE_EQ(one.total, 0.0);
}

// --- critical path against real engines --------------------------------------

/// The tentpole acceptance identity on a real schedule: the chain recovered
/// from telemetry spans tiles [0, makespan] gaplessly, so (a) per-phase
/// seconds sum to the ledger's critical-path time (the max final clock)
/// within 1e-9, and (b) consecutive segments join exactly. Non-uniform
/// blocks make some teams genuine stragglers.
template <class Engine>
void expect_chain_tiles_makespan(Engine& engine, obs::Telemetry& telem, int steps) {
  engine.set_telemetry(&telem);
  engine.run(steps);
  telem.finalize(engine.comm());

  ASSERT_NE(telem.trace(), nullptr);
  const auto rep = obs::analyze_critical_path(telem.spans(), telem.trace());

  double makespan = 0.0;
  for (int r = 0; r < engine.comm().size(); ++r) {
    makespan = std::max(makespan, engine.comm().clock(r));
  }
  ASSERT_GE(rep.end_rank, 0);
  EXPECT_DOUBLE_EQ(engine.comm().clock(rep.end_rank), makespan);
  EXPECT_NEAR(rep.total, makespan, 1e-9);

  double phase_sum = 0.0;
  for (double s : rep.phase_seconds) phase_sum += s;
  EXPECT_NEAR(phase_sum, makespan, 1e-9);

  double rank_sum = 0.0;
  for (double s : rep.rank_path_seconds) rank_sum += s;
  EXPECT_NEAR(rank_sum, makespan, 1e-9);

  ASSERT_FALSE(rep.segments.empty());
  for (std::size_t i = 0; i < rep.segments.size(); ++i) {
    EXPECT_GT(rep.segments[i].duration(), 0.0);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(rep.segments[i].start, rep.segments[i - 1].end);
    }
  }
  EXPECT_DOUBLE_EQ(rep.segments.front().start, 0.0);
  EXPECT_DOUBLE_EQ(rep.segments.back().end, makespan);
}

TEST(ObsCriticalPath, TilesAllPairsMakespanExactly) {
  const int p = 12;
  const int c = 2;
  std::vector<core::PhantomBlock> blocks;
  for (int t = 0; t < p / c; ++t) blocks.push_back({static_cast<std::uint64_t>(3 + 2 * t)});
  core::PhantomPolicy policy({0.0, /*bulk=*/true});
  core::CaAllPairs<core::PhantomPolicy> engine({p, c, machine::laptop()}, policy,
                                               std::move(blocks));
  obs::Telemetry telem(obs::ObsLevel::Full);
  expect_chain_tiles_makespan(engine, telem, 3);
}

TEST(ObsCriticalPath, TilesCutoffMakespanExactly) {
  const int q = 8;
  const int c = 2;
  const int m = 2;
  std::vector<core::PhantomBlock> blocks;
  for (int t = 0; t < q; ++t) blocks.push_back({static_cast<std::uint64_t>(2 + t % 4)});
  core::PhantomPolicy policy({/*reassign_fraction=*/0.05, /*bulk=*/true});
  core::CaCutoff<core::PhantomPolicy> engine(
      {q * c, c, machine::laptop(), core::CutoffGeometry::make_1d(q, m), /*periodic=*/true},
      policy, std::move(blocks));
  obs::Telemetry telem(obs::ObsLevel::Full);
  expect_chain_tiles_makespan(engine, telem, 2);
}

// --- telemetry metrics publication -------------------------------------------

/// Metrics level: counters must agree with the CostLedger's own totals —
/// same events, two observers.
TEST(ObsTelemetry, MetricsAgreeWithLedgerTraffic) {
  const int p = 12;
  const int c = 2;
  std::vector<core::PhantomBlock> blocks;
  for (int t = 0; t < p / c; ++t) blocks.push_back({static_cast<std::uint64_t>(3 + t)});
  core::PhantomPolicy policy({0.0, /*bulk=*/true});
  core::CaAllPairs<core::PhantomPolicy> engine({p, c, machine::laptop()}, policy,
                                               std::move(blocks));
  obs::Telemetry telem(obs::ObsLevel::Metrics);
  engine.set_telemetry(&telem);
  // Independent witness: the trace records exactly the events the observer
  // hooks see (the ledger's message column also counts collective hops, so
  // it is not the right cross-check for the p2p counters).
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  const int steps = 2;
  engine.run(steps);
  telem.finalize(engine.comm());

  // Metrics level records no spans and reads no trace.
  EXPECT_TRUE(telem.spans().empty());
  EXPECT_EQ(telem.trace(), nullptr);

  const auto& families = telem.metrics().families();
  const auto sum_counters = [&](const std::string& name) {
    std::uint64_t total = 0;
    const auto it = families.find(name);
    if (it == families.end()) return total;
    for (const auto& [key, series] : it->second.series) {
      total += std::get<obs::Counter>(series.metric).value();
    }
    return total;
  };

  const auto p2p_count = static_cast<std::uint64_t>(trace.p2p().size());
  std::uint64_t p2p_bytes = 0;
  for (const auto& e : trace.p2p()) p2p_bytes += e.bytes;
  ASSERT_GT(p2p_count, 0u);
  EXPECT_EQ(sum_counters("canb_messages_total"), p2p_count);
  // canb_bytes_total additionally counts collective payloads; it can only
  // exceed the p2p byte total, never undercount it.
  EXPECT_GE(sum_counters("canb_bytes_total"), p2p_bytes);
  EXPECT_EQ(sum_counters("canb_steps_total"), static_cast<std::uint64_t>(steps));
  EXPECT_EQ(sum_counters("canb_collectives_total"),
            static_cast<std::uint64_t>(trace.collectives().size()));
  EXPECT_GT(sum_counters("canb_collectives_total"), 0u);

  // The message-size histogram saw exactly the p2p messages.
  const auto& hist_family = families.at("canb_message_bytes");
  std::uint64_t observed = 0;
  for (const auto& [key, series] : hist_family.series) {
    observed += std::get<obs::Histogram>(series.metric).count();
  }
  EXPECT_EQ(observed, p2p_count);

  // finalize() published one clock gauge per rank matching the comm.
  for (int r = 0; r < p; ++r) {
    const auto& clock_family = families.at("canb_rank_clock_seconds");
    const auto key = obs::MetricsRegistry::label_string({{"rank", std::to_string(r)}});
    const auto it = clock_family.series.find(key);
    ASSERT_NE(it, clock_family.series.end());
    EXPECT_DOUBLE_EQ(std::get<obs::Gauge>(it->second.metric).value(), engine.comm().clock(r));
  }
}

TEST(ObsTelemetry, ParseObsLevelRoundTrips) {
  using obs::ObsLevel;
  EXPECT_EQ(obs::parse_obs_level("off"), ObsLevel::Off);
  EXPECT_EQ(obs::parse_obs_level("metrics"), ObsLevel::Metrics);
  EXPECT_EQ(obs::parse_obs_level("full"), ObsLevel::Full);
  EXPECT_FALSE(obs::parse_obs_level("verbose").has_value());
  EXPECT_STREQ(obs::obs_level_name(ObsLevel::Full), "full");
}

}  // namespace
