// Schedule-trace tests: verify the communication *patterns* of the
// algorithms against the paper's illustrations, independent of costs.
//
//  - Figure 1: Algorithm 1's broadcast-within-team, skew-by-row-index, and
//    stride-c shifts.
//  - Figure 4: Algorithm 2's skew into the cutoff window and the 2m/c
//    window walk.
//  - Figure 5: the 2D window walk's per-axis wrap-around.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "machine/presets.hpp"
#include "vmpi/trace.hpp"

namespace {

using namespace canb;
using vmpi::Phase;

core::CaAllPairs<core::PhantomPolicy> make_all_pairs(int p, int c, std::uint64_t per_team) {
  core::PhantomPolicy policy({0.0, /*bulk=*/false});
  return core::CaAllPairs<core::PhantomPolicy>(
      {p, c, machine::laptop()}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(p / c), {per_team}));
}

// --- Figure 1: the all-pairs schedule ----------------------------------------

TEST(TraceAllPairs, BroadcastsAreOnePerTeamWithAllMembers) {
  auto engine = make_all_pairs(36, 3, 4);  // q = 12 teams of 3
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.step();
  int bcasts = 0;
  for (const auto& e : trace.collectives()) {
    if (e.phase != Phase::Broadcast) continue;
    ++bcasts;
    EXPECT_EQ(e.members.size(), 3u);  // c members per team
    EXPECT_FALSE(e.is_reduce);
  }
  EXPECT_EQ(bcasts, 12);  // q teams
  int reduces = 0;
  for (const auto& e : trace.collectives()) {
    if (e.phase == Phase::Reduce) {
      ++reduces;
      EXPECT_TRUE(e.is_reduce);
    }
  }
  EXPECT_EQ(reduces, 12);
}

TEST(TraceAllPairs, SkewShiftsRowKByKColumns) {
  const int p = 20;
  const int c = 2;  // grid 2 x 10
  auto engine = make_all_pairs(p, c, 4);
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.step();
  const auto g = engine.grid();
  for (const auto& e : trace.p2p_of(Phase::Skew)) {
    const int row = g.row_of(e.dst);
    EXPECT_EQ(g.row_of(e.src), row);  // skew stays within the row
    // Receiver is `row` columns east of the sender.
    EXPECT_EQ(g.wrap_col(g.col_of(e.src), row), g.col_of(e.dst));
    EXPECT_GT(row, 0);  // row 0 skews by zero -> no message
  }
}

TEST(TraceAllPairs, ShiftsMoveExactlyCColumnsEast) {
  const int p = 36;
  const int c = 3;
  auto engine = make_all_pairs(p, c, 4);
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.step();
  const auto g = engine.grid();
  const auto shifts = trace.p2p_of(Phase::Shift);
  // p/c^2 - 1 rounds of p messages each.
  const int steps = (p / c) / c - 1;
  EXPECT_EQ(shifts.size(), static_cast<std::size_t>(steps * p));
  for (const auto& e : shifts) {
    EXPECT_EQ(g.row_of(e.src), g.row_of(e.dst));
    EXPECT_EQ(g.wrap_col(g.col_of(e.src), c), g.col_of(e.dst));
  }
}

TEST(TraceAllPairs, EveryRankSendsAndReceivesOncePerShiftRound) {
  auto engine = make_all_pairs(16, 2, 4);
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.step();
  std::map<int, std::map<int, int>> sends_per_round;  // round -> rank -> count
  std::map<int, std::map<int, int>> recvs_per_round;
  for (const auto& e : trace.p2p_of(Phase::Shift)) {
    ++sends_per_round[e.round][e.src];
    ++recvs_per_round[e.round][e.dst];
  }
  for (const auto& [round, sends] : sends_per_round) {
    EXPECT_EQ(sends.size(), 16u) << "round " << round;
    for (const auto& [rank, cnt] : sends) EXPECT_EQ(cnt, 1) << rank;
    for (const auto& [rank, cnt] : recvs_per_round[round]) EXPECT_EQ(cnt, 1) << rank;
  }
}

TEST(TraceAllPairs, C1HasNoCollectivesAndRingShifts) {
  auto engine = make_all_pairs(8, 1, 4);
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.step();
  EXPECT_TRUE(trace.collectives().empty());
  EXPECT_TRUE(trace.p2p_of(Phase::Skew).empty());
  const auto shifts = trace.p2p_of(Phase::Shift);
  EXPECT_EQ(shifts.size(), 7u * 8u);  // p-1 rounds of p messages
  for (const auto& e : shifts) EXPECT_EQ((e.src + 1) % 8, e.dst);  // the classic ring
}

// --- Figure 4: the 1D cutoff schedule ------------------------------------------

core::CaCutoff<core::PhantomPolicy> make_cutoff_1d(int q, int c, int m, bool periodic = false) {
  core::PhantomPolicy policy({0.0, false});
  return core::CaCutoff<core::PhantomPolicy>(
      {q * c, c, machine::laptop(), core::CutoffGeometry::make_1d(q, m), periodic}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(q), {4}));
}

TEST(TraceCutoff, SkewJumpsRowKToWindowSlotK) {
  const int q = 12;
  const int c = 3;
  const int m = 3;
  auto engine = make_cutoff_1d(q, c, m);
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.step();
  const auto g = engine.grid();
  for (const auto& e : trace.p2p_of(Phase::Skew)) {
    const int row = g.row_of(e.dst);
    EXPECT_EQ(g.row_of(e.src), row);
    // Receiver at column t pulls the block at offset (row - m): the sender
    // holds it at column t + (row - m).
    EXPECT_EQ(g.col_of(e.src), g.wrap_col(g.col_of(e.dst), row - m));
  }
}

TEST(TraceCutoff, WindowWalkStridesByC) {
  // c divides the window size (2m+1 = 9, c = 3): no padding slots, so
  // every shift round is the uniform stride-c move of Figure 4.
  const int q = 16;
  const int c = 3;
  const int m = 4;
  auto engine = make_cutoff_1d(q, c, m);
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.step();
  const auto g = engine.grid();
  EXPECT_EQ(engine.slots_per_row(), 3);  // (2m+1)/c
  const auto shifts = trace.p2p_of(Phase::Shift);
  EXPECT_EQ(shifts.size(), 2u * static_cast<std::size_t>(q * c));
  for (const auto& e : shifts) {
    EXPECT_EQ(g.row_of(e.src), g.row_of(e.dst));
    // Blocks advance to higher offsets: the receiver pulls from the rank
    // c columns east.
    EXPECT_EQ(g.col_of(e.src), g.wrap_col(g.col_of(e.dst), c));
  }
}

TEST(TraceCutoff, PaddingRowsWrapAroundTheWindow) {
  // With c = 2 and window 9, slots_per_row = 5 and the final round of some
  // rows crosses the window boundary: the buffer "wraps around at the
  // cutoff radius" (Figure 4's label 3) with a non-stride displacement.
  const int q = 16;
  const int c = 2;
  const int m = 4;
  auto engine = make_cutoff_1d(q, c, m);
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.step();
  const auto g = engine.grid();
  EXPECT_EQ(engine.slots_per_row(), 5);
  int strides = 0;
  int wraps = 0;
  for (const auto& e : trace.p2p_of(Phase::Shift)) {
    if (g.col_of(e.src) == g.wrap_col(g.col_of(e.dst), c)) {
      ++strides;
    } else {
      ++wraps;
    }
  }
  EXPECT_GT(strides, 0);
  EXPECT_GT(wraps, 0);  // the wrap rounds exist
  EXPECT_GT(strides, wraps);
}

TEST(TraceCutoff, MessageCountScalesWithWindowNotMachine) {
  // Total shift rounds ~ 2m/c regardless of q (the cutoff decouples
  // communication from machine size — Section IV).
  const int c = 2;
  const int m = 4;
  auto small = make_cutoff_1d(16, c, m);
  auto large = make_cutoff_1d(64, c, m);
  vmpi::TraceRecorder ts, tl;
  small.comm().set_trace(&ts);
  large.comm().set_trace(&tl);
  small.step();
  large.step();
  auto rounds = [](const vmpi::TraceRecorder& t) {
    std::set<int> r;
    for (const auto& e : t.p2p_of(Phase::Shift)) r.insert(e.round);
    return r.size();
  };
  EXPECT_EQ(rounds(ts), rounds(tl));
}

// --- Figure 5: the 2D window walk ---------------------------------------------

TEST(TraceCutoff2d, ShiftsWrapPerAxis) {
  const int qx = 5;
  const int qy = 5;
  const int c = 4;  // Figure 5's configuration: 25 teams, 4 layers
  const int m = 1;
  core::PhantomPolicy policy({0.0, false});
  core::CaCutoff<core::PhantomPolicy> engine(
      {qx * qy * c, c, machine::laptop(), core::CutoffGeometry::make_2d(qx, qy, m, m), false},
      policy, std::vector<core::PhantomBlock>(25, {4}));
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.step();
  const auto g = engine.grid();
  // Window = 9 slots over 4 rows -> ceil(9/4) = 3 slots/row, 2 shift rounds.
  EXPECT_EQ(engine.slots_per_row(), 3);
  for (const auto& e : trace.p2p_of(Phase::Shift)) {
    EXPECT_EQ(g.row_of(e.src), g.row_of(e.dst));
    // Displacement is within the 2D team grid: decompose the column move.
    const int sx = g.col_of(e.src) % qx;
    const int sy = g.col_of(e.src) / qx;
    const int dx_ = g.col_of(e.dst) % qx;
    const int dy_ = g.col_of(e.dst) / qx;
    // Per-axis distance never exceeds the window span (2m+1 teams).
    auto axis_dist = [](int a, int b, int qdim) {
      const int d = std::abs(a - b);
      return std::min(d, qdim - d);
    };
    EXPECT_LE(axis_dist(sx, dx_, qx), 2 * m + 1);
    EXPECT_LE(axis_dist(sy, dy_, qy), 2 * m + 1);
  }
}

}  // namespace
