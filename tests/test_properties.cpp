// Randomized property tests: invariants that must hold for arbitrary
// configurations, checked over seeded random sweeps.
//
//  P1  permute rounds conserve buffers (multiset equality)
//  P2  clock == sum of per-phase ledger seconds, always
//  P3  engine construction accepts exactly the documented (p, c) set
//  P4  total examined interactions equal the analytic schedule count
//  P5  real and phantom ledgers agree for random configurations
//  P6  gather() preserves the particle set (no loss, no duplication)
//  P7  a zero-rate PerturbationModel is bitwise inert: ledger, clocks, and
//      trajectories match the no-model path exactly
//  P8  attached telemetry is bitwise inert: full observability changes no
//      clock, ledger entry, or trajectory relative to an unobserved run
#include <gtest/gtest.h>

#include <cstdlib>

#include <algorithm>
#include <memory>
#include <numeric>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "obs/telemetry.hpp"
#include "particles/init.hpp"
#include "support/rng.hpp"
#include "vmpi/fault.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;
using particles::InverseSquareRepulsion;
using Policy = core::RealPolicy<InverseSquareRepulsion>;

// --- P1 + P2: permutation rounds ------------------------------------------------

TEST(Properties, RandomPermutationsConserveBuffersAndClockInvariant) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const int p = 2 + static_cast<int>(rng.uniform_int(62));
    vmpi::VirtualComm vc(p, machine::laptop());
    std::vector<int> perm(static_cast<std::size_t>(p));
    std::iota(perm.begin(), perm.end(), 0);
    // Fisher-Yates with the deterministic generator.
    for (int i = p - 1; i > 0; --i) {
      const auto j = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(i + 1)));
      std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
    }
    std::vector<int> bufs(static_cast<std::size_t>(p));
    std::iota(bufs.begin(), bufs.end(), 1000);
    std::vector<int> scratch;
    vmpi::permute_buffers(
        vc, [&](int r) { return perm[static_cast<std::size_t>(r)]; }, bufs, scratch,
        [](int) { return 16.0; }, vmpi::Phase::Shift);
    auto sorted = bufs;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < p; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], 1000 + i);
    for (int r = 0; r < p; ++r)
      EXPECT_NEAR(vc.clock(r), vc.ledger().total_seconds(r), 1e-15);
  }
}

// --- P3: validity is exactly the documented predicate ----------------------------

TEST(Properties, EngineAcceptsExactlyValidReplicationFactors) {
  Xoshiro256 rng(7);
  int accepted = 0;
  int rejected = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int p = 1 + static_cast<int>(rng.uniform_int(96));
    const int c = 1 + static_cast<int>(rng.uniform_int(12));
    const bool valid = vmpi::valid_all_pairs_replication(p, c);
    core::PhantomPolicy policy({0.0, false});
    bool constructed = true;
    try {
      std::vector<core::PhantomBlock> blocks(
          valid ? static_cast<std::size_t>(p / c)
                : static_cast<std::size_t>(std::max(1, p / std::max(1, c))),
          {2});
      core::CaAllPairs<core::PhantomPolicy> engine({p, c, machine::laptop()}, policy,
                                                   std::move(blocks));
      engine.step();
    } catch (const PreconditionError&) {
      constructed = false;
    }
    EXPECT_EQ(constructed, valid) << "p=" << p << " c=" << c;
    (valid ? accepted : rejected)++;
  }
  EXPECT_GT(accepted, 5);  // the sweep must exercise both branches
  EXPECT_GT(rejected, 5);
}

// --- P4: interaction conservation -------------------------------------------------

TEST(Properties, AllPairsExaminesExactlyAllOrderedPairs) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    // Random valid (p, c) and random per-team counts.
    const int candidates[][2] = {{4, 1}, {8, 2}, {16, 2}, {16, 4}, {36, 3}, {64, 4}, {25, 5}};
    const auto& pc = candidates[rng.uniform_int(7)];
    const int p = pc[0];
    const int c = pc[1];
    const int q = p / c;
    std::vector<core::PhantomBlock> blocks(static_cast<std::size_t>(q));
    std::uint64_t n = 0;
    for (auto& b : blocks) {
      b.count = 1 + rng.uniform_int(7);
      n += b.count;
    }
    core::PhantomPolicy policy({0.0, false});
    core::CaAllPairs<core::PhantomPolicy> engine({p, c, machine::laptop()}, policy,
                                                 std::move(blocks));
    engine.step();
    // Total examined pairs across all ranks must be exactly n(n-1).
    const double gamma = machine::laptop().gamma;
    const double integrate =
        machine::laptop().gamma_flop * core::kIntegrateFlopsPerParticle * static_cast<double>(n);
    const double compute = engine.comm().ledger().aggregate(vmpi::Phase::Compute).seconds;
    const double pairs = (compute - integrate) / gamma;
    EXPECT_NEAR(pairs, static_cast<double>(n) * (static_cast<double>(n) - 1), 1e-6)
        << "p=" << p << " c=" << c;
  }
}

TEST(Properties, PeriodicCutoffExaminesExactlyWindowPairs) {
  Xoshiro256 rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const int q = 8 + 2 * static_cast<int>(rng.uniform_int(8));  // 8..22
    const int m = 1 + static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(q / 2 - 1)));
    const int c = 1 + static_cast<int>(rng.uniform_int(2));  // 1..3, c | p by construction
    const int p = q * c;
    if (c > 2 * m + 1) continue;
    std::vector<core::PhantomBlock> blocks(static_cast<std::size_t>(q));
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(q));
    for (int t = 0; t < q; ++t) {
      counts[static_cast<std::size_t>(t)] = 1 + rng.uniform_int(5);
      blocks[static_cast<std::size_t>(t)].count = counts[static_cast<std::size_t>(t)];
    }
    core::PhantomPolicy policy({0.0, false});
    core::CaCutoff<core::PhantomPolicy> engine(
        {p, c, machine::laptop(), core::CutoffGeometry::make_1d(q, m), /*periodic=*/true},
        policy, std::move(blocks));
    engine.step();
    // Analytic count: every team t against teams t-m..t+m (ring), self-pairs
    // excluded within its own block.
    double expected = 0;
    std::uint64_t n = 0;
    for (int t = 0; t < q; ++t) {
      n += counts[static_cast<std::size_t>(t)];
      for (int o = -m; o <= m; ++o) {
        const int u = ((t + o) % q + q) % q;
        expected += static_cast<double>(counts[static_cast<std::size_t>(t)]) *
                    static_cast<double>(counts[static_cast<std::size_t>(u)]);
      }
      expected -= static_cast<double>(counts[static_cast<std::size_t>(t)]);  // self pairs
    }
    const double gamma = machine::laptop().gamma;
    const double integrate =
        machine::laptop().gamma_flop * core::kIntegrateFlopsPerParticle * static_cast<double>(n);
    const double compute = engine.comm().ledger().aggregate(vmpi::Phase::Compute).seconds;
    EXPECT_NEAR((compute - integrate) / gamma, expected, expected * 1e-9)
        << "q=" << q << " m=" << m << " c=" << c;
  }
}

// --- P5: real/phantom agreement on random configurations --------------------------

TEST(Properties, RealAndPhantomLedgersAgreeOnRandomConfigs) {
  Xoshiro256 rng(5);
  const Box box = Box::reflective_2d(1.0);
  for (int trial = 0; trial < 6; ++trial) {
    const int candidates[][2] = {{8, 2}, {16, 4}, {12, 2}, {36, 6}};
    const auto& pc = candidates[rng.uniform_int(4)];
    const int p = pc[0];
    const int c = pc[1];
    const int n = 20 + static_cast<int>(rng.uniform_int(80));
    const auto init = particles::init_uniform(n, box, 1000 + trial, 0.0);

    Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
    core::CaAllPairs<Policy> real_engine({p, c, machine::laptop()}, std::move(policy),
                                         decomp::split_even(init, p / c));
    real_engine.step();

    std::vector<core::PhantomBlock> blocks;
    for (const auto& b : decomp::split_even(init, p / c)) blocks.push_back({b.size()});
    core::PhantomPolicy ppolicy({0.0, false});
    core::CaAllPairs<core::PhantomPolicy> phantom({p, c, machine::laptop()}, ppolicy,
                                                  std::move(blocks));
    phantom.step();

    EXPECT_EQ(real_engine.comm().ledger().critical_bytes(),
              phantom.comm().ledger().critical_bytes())
        << "p=" << p << " c=" << c << " n=" << n;
    EXPECT_NEAR(real_engine.comm().max_clock(), phantom.comm().max_clock(), 1e-12);
  }
}

// --- P6: gather conserves particles ------------------------------------------------

TEST(Properties, GatherConservesParticleSetAcrossRandomRuns) {
  Xoshiro256 rng(77);
  const Box box = Box::reflective_1d(1.0);
  for (int trial = 0; trial < 6; ++trial) {
    const int q = 8;
    const int c = 2;
    const int n = 30 + static_cast<int>(rng.uniform_int(50));
    const auto init = particles::init_uniform(n, box, 500 + trial, 2.0);
    const int m = core::window_radius_teams(0.25, 1.0, q);
    Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.25, 2e-3});
    core::CaCutoff<Policy> engine(
        {q * c, c, machine::laptop(), core::CutoffGeometry::make_1d(q, m), false},
        std::move(policy), decomp::split_spatial_1d(init, box, q));
    engine.run(4);
    auto all = decomp::concat(engine.team_results());
    particles::sort_by_id(all);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)].id, i);
  }
}

// --- P7: an all-zero fault model is bitwise inert ----------------------------------

// Attaching a PerturbationModel whose rates are all zero must leave every
// observable — per-rank clocks, every CostLedger field, trajectories —
// *bitwise* identical to running without a model. All fault hooks multiply
// by exactly 1.0 or add empty deliveries, so the guarantee is exact, not
// approximate. Seed honors CANB_FAULT_SEED (the seed must be irrelevant at
// zero rates — the CI matrix verifies that by sweeping it).
TEST(Properties, ZeroRateFaultModelIsBitwiseInert) {
  const std::uint64_t fault_seed =
      std::getenv("CANB_FAULT_SEED")
          ? static_cast<std::uint64_t>(std::strtoull(std::getenv("CANB_FAULT_SEED"), nullptr, 10))
          : 2013;
  Xoshiro256 rng(fault_seed ^ 0xabcdef);
  const Box box2 = Box::reflective_2d(1.0);
  const Box box1 = Box::reflective_1d(1.0);

  auto expect_comms_bitwise_equal = [](const vmpi::VirtualComm& a, const vmpi::VirtualComm& b) {
    ASSERT_EQ(a.size(), b.size());
    for (int r = 0; r < a.size(); ++r) {
      EXPECT_EQ(a.clock(r), b.clock(r));
      EXPECT_EQ(a.ledger().messages(r), b.ledger().messages(r));
      EXPECT_EQ(a.ledger().bytes(r), b.ledger().bytes(r));
      EXPECT_EQ(a.ledger().retries(r), b.ledger().retries(r));
      EXPECT_EQ(a.ledger().timeouts(r), b.ledger().timeouts(r));
      for (int ph = 0; ph < vmpi::kPhaseCount; ++ph) {
        EXPECT_EQ(a.ledger().seconds(r, static_cast<vmpi::Phase>(ph)),
                  b.ledger().seconds(r, static_cast<vmpi::Phase>(ph)));
      }
    }
  };

  for (int trial = 0; trial < 4; ++trial) {
    const int candidates[][2] = {{8, 2}, {12, 2}, {16, 4}, {36, 6}};
    const auto& pc = candidates[rng.uniform_int(4)];
    const int p = pc[0];
    const int c = pc[1];
    const int n = 24 + static_cast<int>(rng.uniform_int(60));
    const auto init = particles::init_uniform(n, box2, 2000 + trial, 0.02);
    vmpi::FaultConfig zero;
    zero.seed = fault_seed + static_cast<std::uint64_t>(trial);

    auto run = [&](bool with_model) {
      Policy policy({box2, InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
      struct Result {
        std::unique_ptr<core::CaAllPairs<Policy>> engine;
        std::unique_ptr<vmpi::PerturbationModel> model;
      } res;
      res.engine = std::make_unique<core::CaAllPairs<Policy>>(
          core::CaAllPairs<Policy>::Config{p, c, machine::laptop()}, std::move(policy),
          decomp::split_even(init, p / c));
      if (with_model) {
        res.model = std::make_unique<vmpi::PerturbationModel>(zero, p);
        EXPECT_FALSE(res.model->active());
        res.engine->comm().set_fault(res.model.get());
      }
      res.engine->run(2);
      return res;
    };

    const auto bare = run(false);
    const auto modeled = run(true);
    expect_comms_bitwise_equal(bare.engine->comm(), modeled.engine->comm());
    auto lhs = decomp::concat(bare.engine->team_results());
    auto rhs = decomp::concat(modeled.engine->team_results());
    particles::sort_by_id(lhs);
    particles::sort_by_id(rhs);
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].px, rhs[i].px);
      EXPECT_EQ(lhs[i].py, rhs[i].py);
      EXPECT_EQ(lhs[i].vx, rhs[i].vx);
      EXPECT_EQ(lhs[i].vy, rhs[i].vy);
    }
  }

  // Same property on the cutoff engine (different schedule, different phases).
  for (int trial = 0; trial < 2; ++trial) {
    const int q = 8;
    const int c = 2;
    const int n = 30 + static_cast<int>(rng.uniform_int(40));
    const auto init = particles::init_uniform(n, box1, 3000 + trial, 2.0);
    const int m = core::window_radius_teams(0.25, 1.0, q);
    vmpi::FaultConfig zero;
    zero.seed = fault_seed + 100 + static_cast<std::uint64_t>(trial);

    auto run = [&](bool with_model) {
      Policy policy({box1, InverseSquareRepulsion{1e-4, 1e-2}, 0.25, 2e-3});
      struct Result {
        std::unique_ptr<core::CaCutoff<Policy>> engine;
        std::unique_ptr<vmpi::PerturbationModel> model;
      } res;
      res.engine = std::make_unique<core::CaCutoff<Policy>>(
          core::CaCutoff<Policy>::Config{q * c, c, machine::laptop(),
                                         core::CutoffGeometry::make_1d(q, m), false},
          std::move(policy), decomp::split_spatial_1d(init, box1, q));
      if (with_model) {
        res.model = std::make_unique<vmpi::PerturbationModel>(zero, q * c);
        res.engine->comm().set_fault(res.model.get());
      }
      res.engine->run(2);
      return res;
    };

    const auto bare = run(false);
    const auto modeled = run(true);
    expect_comms_bitwise_equal(bare.engine->comm(), modeled.engine->comm());
  }
}

// --- P8: attached telemetry is bitwise inert ---------------------------------------

// Observation must be strictly passive: a run with full telemetry (metrics,
// span sampling, owned trace — and the per-step schedule the observer hooks
// force in place of the bulk shortcut) produces the *bitwise* same clocks,
// ledger, and trajectories as a bare run. This is the guarantee that makes
// --obs-level safe to turn on for any experiment.
TEST(Properties, AttachedTelemetryIsBitwiseInert) {
  const Box box2 = Box::reflective_2d(1.0);

  auto expect_comms_bitwise_equal = [](const vmpi::VirtualComm& a, const vmpi::VirtualComm& b) {
    ASSERT_EQ(a.size(), b.size());
    for (int r = 0; r < a.size(); ++r) {
      EXPECT_EQ(a.clock(r), b.clock(r));
      EXPECT_EQ(a.ledger().messages(r), b.ledger().messages(r));
      EXPECT_EQ(a.ledger().bytes(r), b.ledger().bytes(r));
      for (int ph = 0; ph < vmpi::kPhaseCount; ++ph) {
        EXPECT_EQ(a.ledger().seconds(r, static_cast<vmpi::Phase>(ph)),
                  b.ledger().seconds(r, static_cast<vmpi::Phase>(ph)));
      }
    }
  };

  for (int trial = 0; trial < 2; ++trial) {
    const int p = trial == 0 ? 12 : 16;
    const int c = trial == 0 ? 2 : 4;
    const int n = 40 + 10 * trial;
    const auto init = particles::init_uniform(n, box2, 4000 + trial, 0.02);

    auto run = [&](bool with_telemetry) {
      Policy policy({box2, InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
      struct Result {
        std::unique_ptr<core::CaAllPairs<Policy>> engine;
        std::unique_ptr<obs::Telemetry> telemetry;
      } res;
      res.engine = std::make_unique<core::CaAllPairs<Policy>>(
          core::CaAllPairs<Policy>::Config{p, c, machine::laptop()}, std::move(policy),
          decomp::split_even(init, p / c));
      if (with_telemetry) {
        res.telemetry = std::make_unique<obs::Telemetry>(obs::ObsLevel::Full);
        res.engine->set_telemetry(res.telemetry.get());
      }
      res.engine->run(2);
      return res;
    };

    const auto bare = run(false);
    const auto observed = run(true);
    expect_comms_bitwise_equal(bare.engine->comm(), observed.engine->comm());
    // The observed run really did observe something.
    ASSERT_TRUE(observed.telemetry->spans().size() > 2);
    ASSERT_FALSE(observed.telemetry->metrics().empty());

    auto lhs = decomp::concat(bare.engine->team_results());
    auto rhs = decomp::concat(observed.engine->team_results());
    particles::sort_by_id(lhs);
    particles::sort_by_id(rhs);
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].px, rhs[i].px);
      EXPECT_EQ(lhs[i].py, rhs[i].py);
      EXPECT_EQ(lhs[i].vx, rhs[i].vx);
      EXPECT_EQ(lhs[i].vy, rhs[i].vy);
    }
  }

  // Cutoff engine, Metrics level (the counter-only fast configuration).
  {
    const Box box1 = Box::reflective_1d(1.0);
    const int q = 8;
    const int c = 2;
    const auto init = particles::init_uniform(48, box1, 5000, 2.0);
    const int m = core::window_radius_teams(0.25, 1.0, q);

    auto run = [&](bool with_telemetry) {
      Policy policy({box1, InverseSquareRepulsion{1e-4, 1e-2}, 0.25, 2e-3});
      struct Result {
        std::unique_ptr<core::CaCutoff<Policy>> engine;
        std::unique_ptr<obs::Telemetry> telemetry;
      } res;
      res.engine = std::make_unique<core::CaCutoff<Policy>>(
          core::CaCutoff<Policy>::Config{q * c, c, machine::laptop(),
                                         core::CutoffGeometry::make_1d(q, m), false},
          std::move(policy), decomp::split_spatial_1d(init, box1, q));
      if (with_telemetry) {
        res.telemetry = std::make_unique<obs::Telemetry>(obs::ObsLevel::Metrics);
        res.engine->set_telemetry(res.telemetry.get());
      }
      res.engine->run(2);
      return res;
    };

    const auto bare = run(false);
    const auto observed = run(true);
    expect_comms_bitwise_equal(bare.engine->comm(), observed.engine->comm());
    ASSERT_FALSE(observed.telemetry->metrics().empty());
  }
}

}  // namespace
