// Randomized property tests: invariants that must hold for arbitrary
// configurations, checked over seeded random sweeps.
//
//  P1  permute rounds conserve buffers (multiset equality)
//  P2  clock == sum of per-phase ledger seconds, always
//  P3  engine construction accepts exactly the documented (p, c) set
//  P4  total examined interactions equal the analytic schedule count
//  P5  real and phantom ledgers agree for random configurations
//  P6  gather() preserves the particle set (no loss, no duplication)
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/init.hpp"
#include "support/rng.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;
using particles::InverseSquareRepulsion;
using Policy = core::RealPolicy<InverseSquareRepulsion>;

// --- P1 + P2: permutation rounds ------------------------------------------------

TEST(Properties, RandomPermutationsConserveBuffersAndClockInvariant) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const int p = 2 + static_cast<int>(rng.uniform_int(62));
    vmpi::VirtualComm vc(p, machine::laptop());
    std::vector<int> perm(static_cast<std::size_t>(p));
    std::iota(perm.begin(), perm.end(), 0);
    // Fisher-Yates with the deterministic generator.
    for (int i = p - 1; i > 0; --i) {
      const auto j = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(i + 1)));
      std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
    }
    std::vector<int> bufs(static_cast<std::size_t>(p));
    std::iota(bufs.begin(), bufs.end(), 1000);
    std::vector<int> scratch;
    vmpi::permute_buffers(
        vc, [&](int r) { return perm[static_cast<std::size_t>(r)]; }, bufs, scratch,
        [](int) { return 16.0; }, vmpi::Phase::Shift);
    auto sorted = bufs;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < p; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], 1000 + i);
    for (int r = 0; r < p; ++r)
      EXPECT_NEAR(vc.clock(r), vc.ledger().total_seconds(r), 1e-15);
  }
}

// --- P3: validity is exactly the documented predicate ----------------------------

TEST(Properties, EngineAcceptsExactlyValidReplicationFactors) {
  Xoshiro256 rng(7);
  int accepted = 0;
  int rejected = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int p = 1 + static_cast<int>(rng.uniform_int(96));
    const int c = 1 + static_cast<int>(rng.uniform_int(12));
    const bool valid = vmpi::valid_all_pairs_replication(p, c);
    core::PhantomPolicy policy({0.0, false});
    bool constructed = true;
    try {
      std::vector<core::PhantomBlock> blocks(
          valid ? static_cast<std::size_t>(p / c)
                : static_cast<std::size_t>(std::max(1, p / std::max(1, c))),
          {2});
      core::CaAllPairs<core::PhantomPolicy> engine({p, c, machine::laptop()}, policy,
                                                   std::move(blocks));
      engine.step();
    } catch (const PreconditionError&) {
      constructed = false;
    }
    EXPECT_EQ(constructed, valid) << "p=" << p << " c=" << c;
    (valid ? accepted : rejected)++;
  }
  EXPECT_GT(accepted, 5);  // the sweep must exercise both branches
  EXPECT_GT(rejected, 5);
}

// --- P4: interaction conservation -------------------------------------------------

TEST(Properties, AllPairsExaminesExactlyAllOrderedPairs) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    // Random valid (p, c) and random per-team counts.
    const int candidates[][2] = {{4, 1}, {8, 2}, {16, 2}, {16, 4}, {36, 3}, {64, 4}, {25, 5}};
    const auto& pc = candidates[rng.uniform_int(7)];
    const int p = pc[0];
    const int c = pc[1];
    const int q = p / c;
    std::vector<core::PhantomBlock> blocks(static_cast<std::size_t>(q));
    std::uint64_t n = 0;
    for (auto& b : blocks) {
      b.count = 1 + rng.uniform_int(7);
      n += b.count;
    }
    core::PhantomPolicy policy({0.0, false});
    core::CaAllPairs<core::PhantomPolicy> engine({p, c, machine::laptop()}, policy,
                                                 std::move(blocks));
    engine.step();
    // Total examined pairs across all ranks must be exactly n(n-1).
    const double gamma = machine::laptop().gamma;
    const double integrate =
        machine::laptop().gamma_flop * core::kIntegrateFlopsPerParticle * static_cast<double>(n);
    const double compute = engine.comm().ledger().aggregate(vmpi::Phase::Compute).seconds;
    const double pairs = (compute - integrate) / gamma;
    EXPECT_NEAR(pairs, static_cast<double>(n) * (static_cast<double>(n) - 1), 1e-6)
        << "p=" << p << " c=" << c;
  }
}

TEST(Properties, PeriodicCutoffExaminesExactlyWindowPairs) {
  Xoshiro256 rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const int q = 8 + 2 * static_cast<int>(rng.uniform_int(8));  // 8..22
    const int m = 1 + static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(q / 2 - 1)));
    const int c = 1 + static_cast<int>(rng.uniform_int(2));  // 1..3, c | p by construction
    const int p = q * c;
    if (c > 2 * m + 1) continue;
    std::vector<core::PhantomBlock> blocks(static_cast<std::size_t>(q));
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(q));
    for (int t = 0; t < q; ++t) {
      counts[static_cast<std::size_t>(t)] = 1 + rng.uniform_int(5);
      blocks[static_cast<std::size_t>(t)].count = counts[static_cast<std::size_t>(t)];
    }
    core::PhantomPolicy policy({0.0, false});
    core::CaCutoff<core::PhantomPolicy> engine(
        {p, c, machine::laptop(), core::CutoffGeometry::make_1d(q, m), /*periodic=*/true},
        policy, std::move(blocks));
    engine.step();
    // Analytic count: every team t against teams t-m..t+m (ring), self-pairs
    // excluded within its own block.
    double expected = 0;
    std::uint64_t n = 0;
    for (int t = 0; t < q; ++t) {
      n += counts[static_cast<std::size_t>(t)];
      for (int o = -m; o <= m; ++o) {
        const int u = ((t + o) % q + q) % q;
        expected += static_cast<double>(counts[static_cast<std::size_t>(t)]) *
                    static_cast<double>(counts[static_cast<std::size_t>(u)]);
      }
      expected -= static_cast<double>(counts[static_cast<std::size_t>(t)]);  // self pairs
    }
    const double gamma = machine::laptop().gamma;
    const double integrate =
        machine::laptop().gamma_flop * core::kIntegrateFlopsPerParticle * static_cast<double>(n);
    const double compute = engine.comm().ledger().aggregate(vmpi::Phase::Compute).seconds;
    EXPECT_NEAR((compute - integrate) / gamma, expected, expected * 1e-9)
        << "q=" << q << " m=" << m << " c=" << c;
  }
}

// --- P5: real/phantom agreement on random configurations --------------------------

TEST(Properties, RealAndPhantomLedgersAgreeOnRandomConfigs) {
  Xoshiro256 rng(5);
  const Box box = Box::reflective_2d(1.0);
  for (int trial = 0; trial < 6; ++trial) {
    const int candidates[][2] = {{8, 2}, {16, 4}, {12, 2}, {36, 6}};
    const auto& pc = candidates[rng.uniform_int(4)];
    const int p = pc[0];
    const int c = pc[1];
    const int n = 20 + static_cast<int>(rng.uniform_int(80));
    const auto init = particles::init_uniform(n, box, 1000 + trial, 0.0);

    Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
    core::CaAllPairs<Policy> real_engine({p, c, machine::laptop()}, std::move(policy),
                                         decomp::split_even(init, p / c));
    real_engine.step();

    std::vector<core::PhantomBlock> blocks;
    for (const auto& b : decomp::split_even(init, p / c)) blocks.push_back({b.size()});
    core::PhantomPolicy ppolicy({0.0, false});
    core::CaAllPairs<core::PhantomPolicy> phantom({p, c, machine::laptop()}, ppolicy,
                                                  std::move(blocks));
    phantom.step();

    EXPECT_EQ(real_engine.comm().ledger().critical_bytes(),
              phantom.comm().ledger().critical_bytes())
        << "p=" << p << " c=" << c << " n=" << n;
    EXPECT_NEAR(real_engine.comm().max_clock(), phantom.comm().max_clock(), 1e-12);
  }
}

// --- P6: gather conserves particles ------------------------------------------------

TEST(Properties, GatherConservesParticleSetAcrossRandomRuns) {
  Xoshiro256 rng(77);
  const Box box = Box::reflective_1d(1.0);
  for (int trial = 0; trial < 6; ++trial) {
    const int q = 8;
    const int c = 2;
    const int n = 30 + static_cast<int>(rng.uniform_int(50));
    const auto init = particles::init_uniform(n, box, 500 + trial, 2.0);
    const int m = core::window_radius_teams(0.25, 1.0, q);
    Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.25, 2e-3});
    core::CaCutoff<Policy> engine(
        {q * c, c, machine::laptop(), core::CutoffGeometry::make_1d(q, m), false},
        std::move(policy), decomp::split_spatial_1d(init, box, q));
    engine.run(4);
    auto all = decomp::concat(engine.team_results());
    particles::sort_by_id(all);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)].id, i);
  }
}

}  // namespace
