// Golden-trace regression tests: the full communication event stream of one
// small all-pairs and one small cutoff configuration, serialized to text and
// diffed exactly against committed files in tests/golden/.
//
// Where test_trace.cpp checks structural *properties* of the schedules,
// these tests pin the schedules byte-for-byte: any reordering, re-phasing,
// or payload-size change — intended or not — shows up as a golden diff.
//
// Regeneration (after an intended schedule change):
//     CANB_REGEN_GOLDEN=1 ./build/tests/test_golden_traces
// rewrites the files under tests/golden/ in the source tree; re-run without
// the variable to confirm, then commit the diff. See docs/TESTING.md.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "machine/presets.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/trace.hpp"

#ifndef CANB_GOLDEN_DIR
#error "CANB_GOLDEN_DIR must point at tests/golden in the source tree"
#endif

namespace {

using namespace canb;

std::string golden_path(const std::string& name) {
  return std::string(CANB_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Compares `actual` against the committed golden file, or rewrites the
/// golden file when CANB_REGEN_GOLDEN is set in the environment.
void check_golden(const std::string& name, const std::string& actual) {
  const auto path = golden_path(name);
  if (std::getenv("CANB_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write golden file " << path;
    out << actual;
    GTEST_LOG_(INFO) << "regenerated " << path;
    return;
  }
  const auto expected = read_file(path);
  ASSERT_FALSE(expected.empty()) << "missing golden file " << path
                                 << " — regenerate with CANB_REGEN_GOLDEN=1";
  EXPECT_EQ(expected, actual) << "schedule diverged from " << path
                              << "; if intended, regenerate with CANB_REGEN_GOLDEN=1";
}

// Team counts are deliberately non-uniform: uniform counts would let a bug
// that swaps teams slip through the byte diff.
TEST(GoldenTraces, AllPairsP12C2TwoSteps) {
  const int p = 12;
  const int c = 2;
  std::vector<core::PhantomBlock> blocks;
  for (int t = 0; t < p / c; ++t) blocks.push_back({static_cast<std::uint64_t>(3 + t)});
  core::PhantomPolicy policy({0.0, /*bulk=*/false});
  core::CaAllPairs<core::PhantomPolicy> engine({p, c, machine::laptop()}, policy,
                                               std::move(blocks));
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.run(2);
  check_golden("allpairs_p12_c2.trace", vmpi::serialize_trace(trace));
}

// Same all-pairs schedule under deterministic message drops: the event
// stream (sources, destinations, payloads, rounds) must not move, and the
// per-event retry/timeout counters pin exactly which deliveries the fault
// streams hit. A seed or stream-order change shows up as a golden diff.
TEST(GoldenTraces, AllPairsP12C2FaultedDrops) {
  const int p = 12;
  const int c = 2;
  std::vector<core::PhantomBlock> blocks;
  for (int t = 0; t < p / c; ++t) blocks.push_back({static_cast<std::uint64_t>(3 + t)});
  core::PhantomPolicy policy({0.0, /*bulk=*/false});
  core::CaAllPairs<core::PhantomPolicy> engine({p, c, machine::laptop()}, policy,
                                               std::move(blocks));
  vmpi::FaultConfig fc;
  fc.seed = 7;
  fc.drop_rate = 0.2;
  vmpi::PerturbationModel fault(fc, p);
  engine.comm().set_fault(&fault);
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.run(2);
  check_golden("allpairs_p12_c2_faulted.trace", vmpi::serialize_trace(trace));
}

TEST(GoldenTraces, Cutoff1dQ8M2C2TwoSteps) {
  const int q = 8;
  const int c = 2;
  const int m = 2;
  std::vector<core::PhantomBlock> blocks;
  for (int t = 0; t < q; ++t) blocks.push_back({static_cast<std::uint64_t>(2 + t % 3)});
  core::PhantomPolicy policy({/*reassign_fraction=*/0.05, /*bulk=*/false});
  core::CaCutoff<core::PhantomPolicy> engine(
      {q * c, c, machine::laptop(), core::CutoffGeometry::make_1d(q, m), /*periodic=*/true},
      policy, std::move(blocks));
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  engine.run(2);
  check_golden("cutoff1d_q8_m2_c2.trace", vmpi::serialize_trace(trace));
}

}  // namespace
