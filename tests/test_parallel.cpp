// Host thread pool: correctness, determinism, and bitwise-identical
// engine results across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/ca_all_pairs.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/init.hpp"
#include "support/parallel.hpp"

namespace {

using namespace canb;

// --- pool unit tests ------------------------------------------------------------

TEST(ThreadPool, SerialModeRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  int sum = 0;
  pool.parallel_for(0, 100, [&](int i) { sum += i; });  // inline: no data race
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  std::mutex m;
  pool.parallel_for(5, 5, [&](int) {
    std::lock_guard<std::mutex> l(m);
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](int i) {
    std::lock_guard<std::mutex> l(m);
    calls += i;
  });
  EXPECT_EQ(calls, 7);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  std::atomic<long long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 64, [&](int i) { total += i; });
  }
  EXPECT_EQ(total.load(), 50ll * (63 * 64 / 2));
}

TEST(ThreadPool, ChunkedVariantPartitionsContiguously) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<int, int>> chunks;
  pool.parallel_for_chunks(0, 103, [&](int b, int e) {
    std::lock_guard<std::mutex> l(m);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  int expected_begin = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expected_begin);
    EXPECT_LT(b, e);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 103);
}

// --- parallel_tasks: the work-stealing scheduler --------------------------------

TEST(Scheduler, ModeNamesRoundTrip) {
  EXPECT_STREQ(to_string(SchedMode::kStatic), "static");
  EXPECT_STREQ(to_string(SchedMode::kStealing), "stealing");
  EXPECT_EQ(parse_sched_mode("static"), SchedMode::kStatic);
  EXPECT_EQ(parse_sched_mode("stealing"), SchedMode::kStealing);
  EXPECT_FALSE(parse_sched_mode("dynamic").has_value());
  EXPECT_FALSE(parse_sched_mode("").has_value());
}

TEST(Scheduler, TasksRunExactlyOnceUnderBothModes) {
  for (const SchedMode mode : {SchedMode::kStatic, SchedMode::kStealing}) {
    for (const int threads : {1, 2, 4}) {
      ThreadPool pool(threads);
      pool.set_sched_mode(mode);
      std::vector<std::atomic<int>> hits(513);
      pool.parallel_tasks(513, [&](int t, int w) {
        ASSERT_GE(w, 0);
        ASSERT_LT(w, pool.thread_count());
        hits[static_cast<std::size_t>(t)]++;
      });
      for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1) << to_string(mode) << " threads=" << threads;
    }
  }
}

TEST(Scheduler, CostHintsCoverEveryTaskEvenWhenSkewed) {
  ThreadPool pool(4);
  pool.set_sched_mode(SchedMode::kStealing);
  // One giant task and a tail of tiny ones: the cost-weighted partition
  // must still hand every worker at least one task and lose none.
  std::vector<double> cost(64, 1.0);
  cost[0] = 1e6;
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_tasks(
      64, [&](int t, int) { hits[static_cast<std::size_t>(t)]++; }, cost.data());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ZeroAndNegativeTaskCountsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_tasks(0, [&](int, int) { ++calls; });
  pool.parallel_tasks(-3, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Scheduler, StatsCountCallsTasksAndWorkers) {
  ThreadPool pool(2);
  pool.set_sched_mode(SchedMode::kStealing);
  pool.reset_scheduler_stats();
  for (int round = 0; round < 3; ++round)
    pool.parallel_tasks(100, [&](int, int) {});
  const SchedulerStats stats = pool.scheduler_stats();
  EXPECT_EQ(stats.calls, 3u);
  EXPECT_EQ(stats.tasks, 300u);
  ASSERT_EQ(stats.tasks_per_worker.size(), 2u);
  std::uint64_t sum = 0;
  for (const auto t : stats.tasks_per_worker) sum += t;
  EXPECT_EQ(sum, 300u);
  ASSERT_EQ(stats.busy_seconds.size(), 2u);
  ASSERT_EQ(stats.idle_seconds.size(), 2u);

  pool.reset_scheduler_stats();
  const SchedulerStats zeroed = pool.scheduler_stats();
  EXPECT_EQ(zeroed.calls, 0u);
  EXPECT_EQ(zeroed.tasks, 0u);
  EXPECT_EQ(zeroed.steals, 0u);
}

TEST(Scheduler, StealGrainClampsToOne) {
  ThreadPool pool(2);
  pool.set_steal_grain(0);
  EXPECT_EQ(pool.steal_grain(), 1);
  pool.set_steal_grain(-5);
  EXPECT_EQ(pool.steal_grain(), 1);
  pool.set_steal_grain(8);
  EXPECT_EQ(pool.steal_grain(), 8);
}

// The TSan target: many rounds of skewed task lists over a stealing pool,
// with per-task writes to disjoint slots and relaxed shared counters —
// exactly the access pattern the engines submit. A race in the deque
// windows, the dispatch flags, or the stats counters shows up here.
TEST(Scheduler, StealingStressManyRoundsDisjointWrites) {
  ThreadPool pool(4);
  pool.set_sched_mode(SchedMode::kStealing);
  const int tasks = 257;
  std::vector<double> cost(static_cast<std::size_t>(tasks));
  for (int t = 0; t < tasks; ++t)
    cost[static_cast<std::size_t>(t)] = (t % 17 == 0) ? 400.0 : 1.0;  // spiky histogram
  std::vector<std::uint64_t> out(static_cast<std::size_t>(tasks), 0);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    for (const int grain : {1, 2, 4}) {
      pool.set_steal_grain(grain);
      pool.parallel_tasks(
          tasks,
          [&](int t, int) {
            // Disjoint per-task slot plus a relaxed shared counter: the two
            // sanctioned communication patterns under the determinism
            // contract.
            out[static_cast<std::size_t>(t)] += static_cast<std::uint64_t>(t) + 1;
            total.fetch_add(1, std::memory_order_relaxed);
          },
          cost.data());
    }
  }
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(200 * 3 * tasks));
  for (int t = 0; t < tasks; ++t)
    EXPECT_EQ(out[static_cast<std::size_t>(t)], 600ull * (static_cast<std::uint64_t>(t) + 1));
}

// --- engine determinism across thread counts --------------------------------------

TEST(ThreadPool, EngineResultsBitwiseIdenticalAcrossThreadCounts) {
  using Policy = core::RealPolicy<particles::InverseSquareRepulsion>;
  const auto box = particles::Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(96, box, 123, 0.02);

  auto run_with = [&](int threads) {
    Policy policy({box, particles::InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
    core::CaAllPairs<Policy> engine({16, 2, machine::laptop()}, std::move(policy),
                                    decomp::split_even(init, 8));
    if (threads > 1) engine.set_host_pool(std::make_shared<ThreadPool>(threads));
    engine.run(5);
    auto all = decomp::concat(engine.team_results());
    particles::sort_by_id(all);
    return all;
  };

  const auto serial = run_with(1);
  for (int threads : {2, 4}) {
    const auto parallel = run_with(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bitwise: each virtual rank's arithmetic is untouched by threading.
      EXPECT_EQ(parallel[i].px, serial[i].px) << i;
      EXPECT_EQ(parallel[i].py, serial[i].py) << i;
      EXPECT_EQ(parallel[i].vx, serial[i].vx) << i;
      EXPECT_EQ(parallel[i].fx, serial[i].fx) << i;
    }
  }
}

TEST(ThreadPool, LedgerIdenticalAcrossThreadCounts) {
  using Policy = core::RealPolicy<particles::InverseSquareRepulsion>;
  const auto box = particles::Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(64, box, 9, 0.0);

  auto run_with = [&](int threads) {
    Policy policy({box, particles::InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
    core::CaAllPairs<Policy> engine({16, 4, machine::laptop()}, std::move(policy),
                                    decomp::split_even(init, 4));
    if (threads > 1) engine.set_host_pool(std::make_shared<ThreadPool>(threads));
    engine.step();
    return std::pair{engine.comm().max_clock(), engine.comm().ledger().critical_bytes()};
  };
  const auto [clock1, bytes1] = run_with(1);
  const auto [clock4, bytes4] = run_with(4);
  EXPECT_EQ(clock1, clock4);
  EXPECT_EQ(bytes1, bytes4);
}

}  // namespace
