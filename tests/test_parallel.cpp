// Host thread pool: correctness, determinism, and bitwise-identical
// engine results across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/ca_all_pairs.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/init.hpp"
#include "support/parallel.hpp"

namespace {

using namespace canb;

// --- pool unit tests ------------------------------------------------------------

TEST(ThreadPool, SerialModeRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  int sum = 0;
  pool.parallel_for(0, 100, [&](int i) { sum += i; });  // inline: no data race
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  std::mutex m;
  pool.parallel_for(5, 5, [&](int) {
    std::lock_guard<std::mutex> l(m);
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](int i) {
    std::lock_guard<std::mutex> l(m);
    calls += i;
  });
  EXPECT_EQ(calls, 7);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  std::atomic<long long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 64, [&](int i) { total += i; });
  }
  EXPECT_EQ(total.load(), 50ll * (63 * 64 / 2));
}

TEST(ThreadPool, ChunkedVariantPartitionsContiguously) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<int, int>> chunks;
  pool.parallel_for_chunks(0, 103, [&](int b, int e) {
    std::lock_guard<std::mutex> l(m);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  int expected_begin = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expected_begin);
    EXPECT_LT(b, e);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 103);
}

// --- engine determinism across thread counts --------------------------------------

TEST(ThreadPool, EngineResultsBitwiseIdenticalAcrossThreadCounts) {
  using Policy = core::RealPolicy<particles::InverseSquareRepulsion>;
  const auto box = particles::Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(96, box, 123, 0.02);

  auto run_with = [&](int threads) {
    Policy policy({box, particles::InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
    core::CaAllPairs<Policy> engine({16, 2, machine::laptop()}, std::move(policy),
                                    decomp::split_even(init, 8));
    if (threads > 1) engine.set_host_pool(std::make_shared<ThreadPool>(threads));
    engine.run(5);
    auto all = decomp::concat(engine.team_results());
    particles::sort_by_id(all);
    return all;
  };

  const auto serial = run_with(1);
  for (int threads : {2, 4}) {
    const auto parallel = run_with(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bitwise: each virtual rank's arithmetic is untouched by threading.
      EXPECT_EQ(parallel[i].px, serial[i].px) << i;
      EXPECT_EQ(parallel[i].py, serial[i].py) << i;
      EXPECT_EQ(parallel[i].vx, serial[i].vx) << i;
      EXPECT_EQ(parallel[i].fx, serial[i].fx) << i;
    }
  }
}

TEST(ThreadPool, LedgerIdenticalAcrossThreadCounts) {
  using Policy = core::RealPolicy<particles::InverseSquareRepulsion>;
  const auto box = particles::Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(64, box, 9, 0.0);

  auto run_with = [&](int threads) {
    Policy policy({box, particles::InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
    core::CaAllPairs<Policy> engine({16, 4, machine::laptop()}, std::move(policy),
                                    decomp::split_even(init, 4));
    if (threads > 1) engine.set_host_pool(std::make_shared<ThreadPool>(threads));
    engine.step();
    return std::pair{engine.comm().max_clock(), engine.comm().ledger().critical_bytes()};
  };
  const auto [clock1, bytes1] = run_with(1);
  const auto [clock4, bytes4] = run_with(4);
  EXPECT_EQ(clock1, clock4);
  EXPECT_EQ(bytes1, bytes4);
}

}  // namespace
