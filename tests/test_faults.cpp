// Fault-injection tests: the PerturbationModel's determinism and retry
// semantics, and the engines' behaviour under a degraded virtual machine.
//
//  F1  drop/retry plans are deterministic for a fixed seed and (statistically)
//      distinct across seeds; retries are bounded by max_attempts - 1
//  F2  under random drop rates every message is still delivered: particle
//      sets are conserved and the clock == sum-of-phases invariant holds
//  F3  a fixed --fault-seed gives identical perturbed ledgers, clocks, and
//      trajectories across host thread counts {1, 2, 8}
//  F4  faults perturb costs only: trajectories are bitwise identical to the
//      fault-free run, and perturbed clocks never run faster
//  F5  the phantom bulk fast path falls back to per-step execution when a
//      model is attached (bulk-on and bulk-off ledgers agree exactly)
//  F6  VirtualComm::reset() replays the same perturbation sequence
//
// The fault seed honors CANB_FAULT_SEED (the CI property matrix runs the
// suite under several fixed seeds); default 2013.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/init.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "vmpi/fault.hpp"

namespace {

using namespace canb;
using particles::Box;
using particles::InverseSquareRepulsion;
using Policy = core::RealPolicy<InverseSquareRepulsion>;

std::uint64_t fault_seed() {
  if (const char* env = std::getenv("CANB_FAULT_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 2013;
}

vmpi::FaultConfig full_fault_config(std::uint64_t seed) {
  vmpi::FaultConfig cfg;
  cfg.seed = seed;
  cfg.jitter = 0.05;
  cfg.straggler_rate = 0.1;
  cfg.straggler_factor = 4.0;
  cfg.link_degrade_rate = 0.1;
  cfg.link_degrade_factor = 4.0;
  cfg.drop_rate = 0.05;
  return cfg;
}

void expect_ledgers_identical(const vmpi::VirtualComm& a, const vmpi::VirtualComm& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a.clock(r), b.clock(r)) << "rank " << r;
    EXPECT_EQ(a.ledger().messages(r), b.ledger().messages(r)) << "rank " << r;
    EXPECT_EQ(a.ledger().bytes(r), b.ledger().bytes(r)) << "rank " << r;
    EXPECT_EQ(a.ledger().retries(r), b.ledger().retries(r)) << "rank " << r;
    EXPECT_EQ(a.ledger().timeouts(r), b.ledger().timeouts(r)) << "rank " << r;
    for (int ph = 0; ph < vmpi::kPhaseCount; ++ph) {
      EXPECT_EQ(a.ledger().seconds(r, static_cast<vmpi::Phase>(ph)),
                b.ledger().seconds(r, static_cast<vmpi::Phase>(ph)))
          << "rank " << r << " phase " << ph;
    }
  }
}

particles::Block gathered(const std::vector<particles::SoaBlock>& team_blocks) {
  auto all = decomp::concat(team_blocks);
  particles::sort_by_id(all);
  return all;
}

// --- F1: plan determinism ---------------------------------------------------

TEST(Faults, DeliveryPlansAreSeedDeterministicAndBounded) {
  vmpi::FaultConfig cfg;
  cfg.seed = fault_seed();
  cfg.drop_rate = 0.4;
  cfg.max_attempts = 6;
  vmpi::PerturbationModel a(cfg, 8);
  vmpi::PerturbationModel b(cfg, 8);
  std::uint64_t total_retries = 0;
  for (int i = 0; i < 500; ++i) {
    const int dst = i % 8;
    const auto da = a.plan_delivery(dst, 1e-6);
    const auto db = b.plan_delivery(dst, 1e-6);
    EXPECT_EQ(da.retries, db.retries);
    EXPECT_EQ(da.timeouts, db.timeouts);
    EXPECT_EQ(da.extra_seconds, db.extra_seconds);
    EXPECT_LE(da.retries, static_cast<std::uint64_t>(cfg.max_attempts - 1));
    total_retries += da.retries;
  }
  // At a 40% drop rate ~500 * 0.4 retries must show up somewhere.
  EXPECT_GT(total_retries, 50u);

  // A different seed draws a different sequence (equality has probability
  // ~0 over 500 plans at this drop rate).
  vmpi::FaultConfig other = cfg;
  other.seed = cfg.seed + 1;
  vmpi::PerturbationModel c(other, 8);
  bool any_difference = false;
  vmpi::PerturbationModel a2(cfg, 8);
  for (int i = 0; i < 500 && !any_difference; ++i) {
    any_difference = c.plan_delivery(i % 8, 1e-6).retries != a2.plan_delivery(i % 8, 1e-6).retries;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Faults, ZeroRateFactorsAreExactlyNeutral) {
  vmpi::FaultConfig cfg;
  cfg.seed = fault_seed();
  vmpi::PerturbationModel model(cfg, 4);
  EXPECT_FALSE(model.active());
  for (int r = 0; r < 4; ++r) EXPECT_EQ(model.compute_factor(r), 1.0);
  EXPECT_EQ(model.link_factor(0, 1), 1.0);
  const auto d = model.plan_delivery(2, 1e-6);
  EXPECT_EQ(d.retries, 0u);
  EXPECT_EQ(d.timeouts, 0u);
  EXPECT_EQ(d.extra_seconds, 0.0);
}

// --- F2: eventual delivery / conservation under random drop rates -----------

TEST(Faults, RandomDropRatesConserveParticlesAndClockInvariant) {
  Xoshiro256 meta(fault_seed());
  const Box box = Box::reflective_1d(1.0);
  for (int trial = 0; trial < 8; ++trial) {
    const int q = 8;
    const int c = 2;
    const int n = 40 + static_cast<int>(meta.uniform_int(40));
    vmpi::FaultConfig fcfg;
    fcfg.seed = fault_seed() + static_cast<std::uint64_t>(trial);
    fcfg.drop_rate = 0.05 + 0.85 * meta.uniform();  // up to 90%: retries pile up
    vmpi::PerturbationModel model(fcfg, q * c);

    const auto init = particles::init_uniform(n, box, 900 + trial, 2.0);
    const int m = core::window_radius_teams(0.25, 1.0, q);
    Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.25, 2e-3});
    core::CaCutoff<Policy> engine(
        {q * c, c, machine::laptop(), core::CutoffGeometry::make_1d(q, m), false},
        std::move(policy), decomp::split_spatial_1d(init, box, q));
    engine.comm().set_fault(&model);
    engine.run(3);

    // Every particle still exists exactly once: drops delay, never destroy.
    const auto all = gathered(engine.team_results());
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n)) << "drop_rate=" << fcfg.drop_rate;
    for (int i = 0; i < n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)].id, i);

    // The ledger invariant survives retries: clock == sum of phase seconds.
    for (int r = 0; r < engine.comm().size(); ++r) {
      EXPECT_NEAR(engine.comm().clock(r), engine.comm().ledger().total_seconds(r), 1e-12);
    }
    if (fcfg.drop_rate > 0.3) {
      EXPECT_GT(engine.comm().ledger().aggregate_retries(), 0u)
          << "drop_rate=" << fcfg.drop_rate;
    }
  }
}

// --- F3 + F4: thread-count invariance; faults perturb costs only ------------

TEST(Faults, PerturbedRunIdenticalAcrossHostThreadCounts) {
  const Box box = Box::reflective_2d(1.0);
  const int p = 12;
  const int c = 2;
  const int n = 72;
  const auto init = particles::init_uniform(n, box, 321, 0.02);
  const auto fcfg = full_fault_config(fault_seed());

  auto run = [&](int threads, vmpi::PerturbationModel* model) {
    Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
    auto engine = std::make_unique<core::CaAllPairs<Policy>>(
        core::CaAllPairs<Policy>::Config{p, c, machine::laptop()}, std::move(policy),
        decomp::split_even(init, p / c));
    if (model) engine->comm().set_fault(model);
    if (threads > 1) engine->set_host_pool(std::make_shared<ThreadPool>(threads));
    engine->run(3);
    return engine;
  };

  vmpi::PerturbationModel m1(fcfg, p), m2(fcfg, p), m8(fcfg, p);
  const auto e1 = run(1, &m1);
  const auto e2 = run(2, &m2);
  const auto e8 = run(8, &m8);
  expect_ledgers_identical(e1->comm(), e2->comm());
  expect_ledgers_identical(e1->comm(), e8->comm());
  EXPECT_GT(e1->comm().ledger().aggregate_retries(), 0u);

  // F4: physics is untouched — the perturbed trajectory matches the clean
  // one bitwise, and perturbed clocks never beat the ideal schedule.
  const auto clean = run(1, nullptr);
  const auto clean_all = gathered(clean->team_results());
  const auto fault_all = gathered(e1->team_results());
  ASSERT_EQ(clean_all.size(), fault_all.size());
  for (std::size_t i = 0; i < clean_all.size(); ++i) {
    EXPECT_EQ(clean_all[i].px, fault_all[i].px);
    EXPECT_EQ(clean_all[i].py, fault_all[i].py);
    EXPECT_EQ(clean_all[i].vx, fault_all[i].vx);
    EXPECT_EQ(clean_all[i].vy, fault_all[i].vy);
  }
  for (int r = 0; r < p; ++r) EXPECT_GE(e1->comm().clock(r), clean->comm().clock(r));
}

TEST(Faults, CutoffPerturbedRunIdenticalAcrossHostThreadCounts) {
  const Box box = Box::reflective_1d(1.0);
  const int q = 8;
  const int c = 2;
  const int n = 64;
  const auto init = particles::init_uniform(n, box, 654, 2.0);
  const int m = core::window_radius_teams(0.25, 1.0, q);
  const auto fcfg = full_fault_config(fault_seed() + 7);

  auto run = [&](int threads, vmpi::PerturbationModel* model) {
    Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.25, 2e-3});
    auto engine = std::make_unique<core::CaCutoff<Policy>>(
        core::CaCutoff<Policy>::Config{q * c, c, machine::laptop(),
                                       core::CutoffGeometry::make_1d(q, m), false},
        std::move(policy), decomp::split_spatial_1d(init, box, q));
    if (model) engine->comm().set_fault(model);
    if (threads > 1) engine->set_host_pool(std::make_shared<ThreadPool>(threads));
    engine->run(3);
    return engine;
  };

  vmpi::PerturbationModel m1(fcfg, q * c), m2(fcfg, q * c), m8(fcfg, q * c);
  const auto e1 = run(1, &m1);
  const auto e2 = run(2, &m2);
  const auto e8 = run(8, &m8);
  expect_ledgers_identical(e1->comm(), e2->comm());
  expect_ledgers_identical(e1->comm(), e8->comm());
}

// --- F5: the bulk fast path defers to per-step execution under faults -------

TEST(Faults, PhantomBulkPathFallsBackUnderActiveModel) {
  const int p = 16;
  const int c = 2;
  const auto fcfg = full_fault_config(fault_seed() + 11);

  auto run = [&](bool bulk, vmpi::PerturbationModel* model) {
    core::PhantomPolicy policy({0.0, bulk});
    core::CaAllPairs<core::PhantomPolicy> engine(
        {p, c, machine::laptop()}, policy,
        std::vector<core::PhantomBlock>(static_cast<std::size_t>(p / c), {5}));
    if (model) engine.comm().set_fault(model);
    engine.run(2);
    return engine.comm().max_clock();
  };

  // With an active model, bulk-on must take the same per-step path (and so
  // consume the same rank streams) as bulk-off: clocks agree exactly.
  vmpi::PerturbationModel ma(fcfg, p), mb(fcfg, p);
  EXPECT_EQ(run(true, &ma), run(false, &mb));

  // An attached but all-zero model keeps the bulk path: bitwise equal to the
  // model-free bulk run, and near the per-step schedule to the same tolerance
  // the fault-free bulk path guarantees (k additions vs one multiply).
  vmpi::FaultConfig zero;
  zero.seed = fault_seed();
  vmpi::PerturbationModel za(zero, p), zb(zero, p);
  EXPECT_EQ(run(true, &za), run(true, nullptr));
  EXPECT_NEAR(run(true, &za), run(false, &zb), 1e-12);
}

// --- F6: reset replays the same faults --------------------------------------

TEST(Faults, CommResetReplaysIdenticalPerturbations) {
  const int p = 12;
  const auto fcfg = full_fault_config(fault_seed() + 3);
  vmpi::PerturbationModel model(fcfg, p);
  core::PhantomPolicy policy({0.0, false});
  core::CaAllPairs<core::PhantomPolicy> engine(
      {p, 2, machine::laptop()}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(p / 2), {4}));
  engine.comm().set_fault(&model);
  engine.step();
  const double first = engine.comm().max_clock();
  const auto first_retries = engine.comm().ledger().aggregate_retries();
  engine.comm().reset();
  engine.step();
  EXPECT_EQ(engine.comm().max_clock(), first);
  EXPECT_EQ(engine.comm().ledger().aggregate_retries(), first_retries);
}

}  // namespace
