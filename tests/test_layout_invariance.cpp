// The resident-layout acceptance contract: host execution knobs — the
// kernel engine (scalar vs batched SoA sweep) and the host thread count —
// must change NOTHING observable in the simulation. Trajectories and
// forces are bitwise identical (the force-lane precision invariant in
// particles/batched_engine.hpp makes this exact, not approximate), and
// the virtual-time ledger agrees field by field, because every charge
// derives from particle counts and examined-pair counts, never from how
// the host stores or sweeps the lanes.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "machine/presets.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "support/parallel.hpp"

namespace {

using namespace canb;
using Sim = sim::Simulation<particles::InverseSquareRepulsion>;

constexpr int kSteps = 3;
const int kThreadCounts[] = {1, 2, 8};
const particles::KernelEngine kEngines[] = {particles::KernelEngine::Scalar,
                                            particles::KernelEngine::Batched};

Sim make_sim(sim::Method method, double cutoff, particles::KernelEngine engine, int threads) {
  Sim::Config cfg;
  cfg.method = method;
  cfg.p = method == sim::Method::CaCutoff ? 32 : 16;
  cfg.c = 2;
  cfg.machine = machine::hopper();
  cfg.kernel = {1e-4, 1e-2};
  cfg.cutoff = cutoff;
  cfg.dt = 1e-4;
  cfg.engine = engine;
  Sim s(cfg, particles::init_uniform(256, cfg.box, 2013, 0.01));
  if (threads > 1) s.set_host_pool(std::make_shared<ThreadPool>(threads));
  return s;
}

/// Bitwise float equality: distinguishes +0.0 from -0.0 and would catch a
/// NaN produced on one path only — stricter than operator==.
::testing::AssertionResult bits_equal(float a, float b) {
  if (std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ (bits 0x" << std::hex
         << std::bit_cast<std::uint32_t>(a) << " vs 0x" << std::bit_cast<std::uint32_t>(b)
         << ")";
}

void expect_state_bitwise_equal(const particles::Block& got, const particles::Block& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].id, want[i].id);
    EXPECT_TRUE(bits_equal(got[i].fx, want[i].fx)) << "fx of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].fy, want[i].fy)) << "fy of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].px, want[i].px)) << "px of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].py, want[i].py)) << "py of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].vx, want[i].vx)) << "vx of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].vy, want[i].vy)) << "vy of particle " << got[i].id;
  }
}

void expect_report_field_equal(const sim::RunReport& got, const sim::RunReport& want) {
  EXPECT_EQ(got.messages, want.messages);
  EXPECT_EQ(got.bytes, want.bytes);
  EXPECT_EQ(got.compute, want.compute);
  EXPECT_EQ(got.broadcast, want.broadcast);
  EXPECT_EQ(got.skew, want.skew);
  EXPECT_EQ(got.shift, want.shift);
  EXPECT_EQ(got.reduce, want.reduce);
  EXPECT_EQ(got.reassign, want.reassign);
  EXPECT_EQ(got.wall, want.wall);
  EXPECT_EQ(got.imbalance, want.imbalance);
}

void run_matrix(sim::Method method, double cutoff) {
  // Baseline: single-threaded scalar — the exactness reference.
  auto baseline = make_sim(method, cutoff, particles::KernelEngine::Scalar, 1);
  baseline.run(kSteps);
  const auto want_state = baseline.gather();
  const auto want_report = baseline.report();

  for (const auto engine : kEngines) {
    for (const int threads : kThreadCounts) {
      if (engine == particles::KernelEngine::Scalar && threads == 1) continue;
      SCOPED_TRACE(::testing::Message()
                   << particles::engine_name(engine) << " engine, " << threads << " threads");
      auto s = make_sim(method, cutoff, engine, threads);
      s.run(kSteps);
      expect_state_bitwise_equal(s.gather(), want_state);
      expect_report_field_equal(s.report(), want_report);
    }
  }
}

TEST(LayoutInvariance, CaAllPairsBitwiseAcrossEnginesAndThreads) {
  run_matrix(sim::Method::CaAllPairs, 0.0);
}

TEST(LayoutInvariance, CaCutoffBitwiseAcrossEnginesAndThreads) {
  run_matrix(sim::Method::CaCutoff, 0.12);
}

}  // namespace
