// Particle substrate: record layout, boxes/boundaries, kernels, integrators,
// initializers, cell lists, diagnostics, and the serial reference.
#include <gtest/gtest.h>

#include <cmath>

#include "particles/box.hpp"
#include "particles/cell_list.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/integrator.hpp"
#include "particles/kernels.hpp"
#include "particles/reference.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace {

using namespace canb;
using namespace canb::particles;

// --- record layout ----------------------------------------------------------

TEST(Particle, Is52BytesAsInThePaper) {
  EXPECT_EQ(sizeof(Particle), 52u);
  EXPECT_EQ(kParticleBytes, 52u);
  Block b(3);
  EXPECT_EQ(block_bytes(b), 156u);
}

// --- box / boundaries ----------------------------------------------------------

TEST(Box, PairDeltaPlain) {
  const Box box = Box::reflective_2d(1.0);
  Particle a;
  a.px = 0.8f;
  a.py = 0.1f;
  Particle b;
  b.px = 0.1f;
  b.py = 0.3f;
  const auto [dx, dy] = pair_delta(a, b, box);
  EXPECT_NEAR(dx, 0.7, 1e-6);
  EXPECT_NEAR(dy, -0.2, 1e-6);
}

TEST(Box, PairDeltaMinimumImage) {
  const Box box = Box::periodic_2d(1.0);
  Particle a;
  a.px = 0.95f;
  Particle b;
  b.px = 0.05f;
  const auto [dx, dy] = pair_delta(a, b, box);
  EXPECT_NEAR(dx, -0.1, 1e-6);  // wraps: 0.9 -> -0.1
  EXPECT_DOUBLE_EQ(dy, 0.0);
}

TEST(Box, ReflectiveBoundaryFlipsVelocity) {
  const Box box = Box::reflective_2d(1.0);
  Particle p;
  p.px = 1.1f;
  p.vx = 0.5f;
  p.py = -0.2f;
  p.vy = -0.3f;
  apply_boundary(p, box);
  EXPECT_NEAR(p.px, 0.9f, 1e-6);
  EXPECT_NEAR(p.vx, -0.5f, 1e-6);
  EXPECT_NEAR(p.py, 0.2f, 1e-6);
  EXPECT_NEAR(p.vy, 0.3f, 1e-6);
  EXPECT_TRUE(inside(p, box));
}

TEST(Box, PeriodicBoundaryWraps) {
  const Box box = Box::periodic_2d(1.0);
  Particle p;
  p.px = 1.25f;
  p.py = -0.25f;
  apply_boundary(p, box);
  EXPECT_NEAR(p.px, 0.25f, 1e-6);
  EXPECT_NEAR(p.py, 0.75f, 1e-6);
}

TEST(Box, OneDimensionalIgnoresY) {
  const Box box = Box::reflective_1d(1.0);
  Particle a;
  a.px = 0.2f;
  a.py = 99.0f;
  Particle b;
  b.px = 0.5f;
  b.py = -42.0f;
  const auto [dx, dy] = pair_delta(a, b, box);
  EXPECT_NEAR(dx, -0.3, 1e-6);
  EXPECT_DOUBLE_EQ(dy, 0.0);
}

TEST(Box, ValidationRejectsBadDims) {
  Box box;
  box.dims = 3;
  EXPECT_THROW(box.validate(), PreconditionError);
  box.dims = 2;
  box.lx = -1;
  EXPECT_THROW(box.validate(), PreconditionError);
}

// --- kernels ----------------------------------------------------------------

TEST(Kernels, InverseSquareRepulsionPushesApart) {
  const InverseSquareRepulsion k{1.0, 0.0};
  Particle a;
  a.px = 1.0f;
  Particle b;
  b.px = 0.0f;
  b.id = 1;
  const Box box = Box::reflective_2d(4.0);
  const auto [dx, dy] = pair_delta(a, b, box);
  const auto f = k.force(dx, dy, dx * dx + dy * dy, a, b);
  EXPECT_GT(f.fx, 0.0);  // pushes a away from b (in +x)
  EXPECT_DOUBLE_EQ(f.fy, 0.0);
  EXPECT_NEAR(f.fx, 1.0, 1e-12);  // 1/r^2 at r=1
}

TEST(Kernels, InverseSquareDropsWithSquaredDistance) {
  const InverseSquareRepulsion k{1.0, 0.0};
  Particle a;
  Particle b;
  b.id = 1;
  const auto f1 = k.force(1.0, 0.0, 1.0, a, b);
  const auto f2 = k.force(2.0, 0.0, 4.0, a, b);
  EXPECT_NEAR(f1.fx / f2.fx, 4.0, 1e-9);
}

TEST(Kernels, GravityAttracts) {
  const Gravity g{1.0, 0.0};
  Particle a;
  Particle b;
  b.id = 1;
  const auto f = g.force(1.0, 0.0, 1.0, a, b);
  EXPECT_LT(f.fx, 0.0);  // pulls a toward b
  EXPECT_LT(g.potential(1.0, a, b), 0.0);
}

TEST(Kernels, LennardJonesHasMinimumAtSigma2Pow16) {
  const LennardJones lj{1.0, 1.0};
  Particle a;
  Particle b;
  b.id = 1;
  const double rmin = std::pow(2.0, 1.0 / 6.0);
  // Repulsive inside the minimum, attractive outside.
  const auto inside_f = lj.force(0.9, 0.0, 0.81, a, b);
  const auto outside_f = lj.force(1.5, 0.0, 2.25, a, b);
  EXPECT_GT(inside_f.fx, 0.0);
  EXPECT_LT(outside_f.fx, 0.0);
  // Near-zero force at the minimum.
  const auto at_min = lj.force(rmin, 0.0, rmin * rmin, a, b);
  EXPECT_NEAR(at_min.fx, 0.0, 1e-6);
}

TEST(Kernels, SoftSphereOnlyActsWhenOverlapping) {
  const SoftSphere ss{100.0, 0.1};
  Particle a;
  Particle b;
  b.id = 1;
  const auto far = ss.force(0.2, 0.0, 0.04, a, b);
  EXPECT_DOUBLE_EQ(far.fx, 0.0);
  const auto near_f = ss.force(0.05, 0.0, 0.0025, a, b);
  EXPECT_GT(near_f.fx, 0.0);
}

TEST(Kernels, AccumulateForcesSkipsSelfPairs) {
  const Box box = Box::reflective_2d(1.0);
  Block ps = init_uniform(10, box, 1);
  Block copy = ps;  // same ids
  const InverseSquareRepulsion k{1.0, 1e-2};
  const auto count = accumulate_forces(std::span<Particle>(ps),
                                       std::span<const Particle>(copy), box, k);
  EXPECT_EQ(count.examined, 90u);  // 10*10 - 10 self pairs
}

TEST(Kernels, AccumulateForcesRespectsCutoff) {
  const Box box = Box::reflective_2d(1.0);
  Block targets(1);
  targets[0].px = 0.0f;
  targets[0].id = 0;
  Block sources(2);
  sources[0].px = 0.1f;
  sources[0].id = 1;
  sources[1].px = 0.9f;
  sources[1].id = 2;
  const InverseSquareRepulsion k{1.0, 1e-2};
  const auto count = accumulate_forces(std::span<Particle>(targets),
                                       std::span<const Particle>(sources), box, k, 0.25);
  EXPECT_EQ(count.examined, 2u);
  EXPECT_EQ(count.within_cutoff, 1u);
}

TEST(Kernels, NewtonsThirdLawForSymmetricKernel) {
  const Box box = Box::reflective_2d(1.0);
  const InverseSquareRepulsion k{1.0, 1e-2};
  Particle a;
  a.px = 0.3f;
  a.py = 0.4f;
  a.id = 0;
  Particle b;
  b.px = 0.6f;
  b.py = 0.1f;
  b.id = 1;
  const auto [dab_x, dab_y] = pair_delta(a, b, box);
  const auto [dba_x, dba_y] = pair_delta(b, a, box);
  const double r2 = dab_x * dab_x + dab_y * dab_y;
  const auto f_ab = k.force(dab_x, dab_y, r2, a, b);
  const auto f_ba = k.force(dba_x, dba_y, r2, b, a);
  EXPECT_NEAR(f_ab.fx, -f_ba.fx, 1e-12);
  EXPECT_NEAR(f_ab.fy, -f_ba.fy, 1e-12);
}

// --- integrators ------------------------------------------------------------

TEST(Integrators, SymplecticEulerFreeParticleMovesLinearly) {
  SymplecticEuler integ;
  Block ps(1);
  ps[0].px = 0.5f;
  ps[0].vx = 0.1f;
  const Box box = Box::reflective_2d(10.0);
  integ.post_force(ps, 0.25, box);
  EXPECT_NEAR(ps[0].px, 0.525f, 1e-6);
}

TEST(Integrators, VelocityVerletMatchesConstantAcceleration) {
  // Under a constant force, velocity Verlet is exact: x = x0 + v0 t + a t^2/2.
  VelocityVerlet integ;
  Block ps(1);
  ps[0].vx = 1.0f;
  ps[0].fx = 2.0f;  // "previous" force; we keep it constant
  const Box box = Box::reflective_2d(1000.0);
  const double dt = 0.1;
  double expect_x = 0.0;
  double expect_v = 1.0;
  for (int i = 0; i < 10; ++i) {
    integ.pre_force(ps, dt);
    ps[0].fx = 2.0f;  // force evaluation yields the same constant force
    integ.post_force(ps, dt, box);
    expect_x += expect_v * dt + 0.5 * 2.0 * dt * dt;
    expect_v += 2.0 * dt;
  }
  EXPECT_NEAR(ps[0].px, expect_x, 1e-4);
  EXPECT_NEAR(ps[0].vx, expect_v, 1e-4);
}

TEST(Integrators, FactoryKnowsNames) {
  EXPECT_EQ(make_integrator("velocity-verlet")->name(), "velocity-verlet");
  EXPECT_EQ(make_integrator("symplectic-euler")->name(), "symplectic-euler");
  EXPECT_THROW(make_integrator("rk4"), PreconditionError);
}

// --- initializers -------------------------------------------------------------

TEST(Init, UniformIsDeterministicAndInBox) {
  const Box box = Box::reflective_2d(2.0);
  const auto a = init_uniform(100, box, 42, 0.1);
  const auto b = init_uniform(100, box, 42, 0.1);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].px, b[i].px);
    EXPECT_EQ(a[i].id, static_cast<int>(i));
    EXPECT_TRUE(inside(a[i], box));
  }
}

TEST(Init, LatticeCoversBoxEvenly) {
  const Box box = Box::reflective_2d(1.0);
  const auto ps = init_lattice(16, box);
  ASSERT_EQ(ps.size(), 16u);
  for (const auto& p : ps) EXPECT_TRUE(inside(p, box));
  // 4x4 lattice: first two points are 0.25 apart in x.
  EXPECT_NEAR(ps[1].px - ps[0].px, 0.25f, 1e-6);
}

TEST(Init, ClustersAreClustered) {
  const Box box = Box::reflective_2d(1.0);
  const auto ps = init_clusters(200, box, 2, 0.01, 7);
  // With two tight clusters, the position variance is far below uniform.
  RunningStats sx;
  for (const auto& p : ps) sx.add(p.px);
  EXPECT_LT(sx.stddev(), 0.25);  // uniform would be ~0.29 only if centers coincide; clusters are tight
  for (const auto& p : ps) EXPECT_TRUE(inside(p, box));
}

TEST(Init, OneDimensionalInitializersZeroY) {
  const Box box = Box::reflective_1d(1.0);
  for (const auto& p : init_uniform(50, box, 3, 0.5)) {
    EXPECT_EQ(p.py, 0.0f);
    EXPECT_EQ(p.vy, 0.0f);
  }
}

// --- cell list ------------------------------------------------------------------

TEST(CellList, MatchesBruteForceUnderCutoff) {
  const Box box = Box::reflective_2d(1.0);
  const double cutoff = 0.2;
  const InverseSquareRepulsion k{1.0, 1e-2};
  Block a = init_uniform(200, box, 11);
  Block b = a;
  cell_list_forces(std::span<Particle>(a), box, k, cutoff);
  accumulate_forces(std::span<Particle>(b), std::span<const Particle>(b), box, k, cutoff);
  sort_by_id(a);
  sort_by_id(b);
  EXPECT_LT(max_force_deviation(a, b), 1e-4);
}

TEST(CellList, MatchesBruteForcePeriodic) {
  const Box box = Box::periodic_2d(1.0);
  const double cutoff = 0.2;
  const InverseSquareRepulsion k{1.0, 1e-2};
  Block a = init_uniform(150, box, 13);
  Block b = a;
  cell_list_forces(std::span<Particle>(a), box, k, cutoff);
  accumulate_forces(std::span<Particle>(b), std::span<const Particle>(b), box, k, cutoff);
  sort_by_id(a);
  sort_by_id(b);
  EXPECT_LT(max_force_deviation(a, b), 1e-4);
}

TEST(CellList, BinOfClampsToGrid) {
  const Box box = Box::reflective_2d(1.0);
  CellList cl(box, 0.25);
  Particle p;
  p.px = 0.999999f;
  p.py = 0.0f;
  const auto [cx, cy] = cl.bin_of(p);
  EXPECT_EQ(cx, cl.cells_x() - 1);
  EXPECT_EQ(cy, 0);
}

// --- diagnostics ---------------------------------------------------------------

TEST(Diagnostics, KineticEnergy) {
  Block ps(2);
  ps[0].vx = 3.0f;
  ps[0].vy = 4.0f;  // |v|=5, ke=12.5
  ps[1].vx = 0.0f;
  EXPECT_DOUBLE_EQ(kinetic_energy(ps), 12.5);
}

TEST(Diagnostics, EnergyConservedByVerletOnGravityOrbit) {
  // A tight two-body problem integrated with velocity Verlet conserves
  // total energy to a few percent over many steps.
  const Box box = Box::reflective_2d(100.0);
  const Gravity g{1.0, 1e-3};
  Block ps(2);
  ps[0].px = 49.5f;
  ps[0].py = 50.0f;
  ps[0].vy = 0.7f;
  ps[0].id = 0;
  ps[1].px = 50.5f;
  ps[1].py = 50.0f;
  ps[1].vy = -0.7f;
  ps[1].id = 1;
  SerialReference<Gravity> ref(ps, {box, g, 1e-3});
  const auto e0 = full_state<Gravity>(ref.particles(), box, g).total();
  ref.run(2000);
  const auto e1 = full_state<Gravity>(ref.particles(), box, g).total();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 0.05);
}

TEST(Diagnostics, MomentumConservedWithoutBoundaries) {
  const Box box = Box::reflective_2d(50.0);
  const InverseSquareRepulsion k{0.01, 1e-2};
  // Small interior cloud: nothing reaches a wall in 100 steps.
  Block ps = init_uniform(20, Box::reflective_2d(1.0), 5, 0.01);
  for (auto& p : ps) {
    p.px += 24.5f;
    p.py += 24.5f;
  }
  SerialReference<InverseSquareRepulsion> ref(ps, {box, k, 1e-3});
  const auto s0 = quick_state(ref.particles());
  ref.run(100);
  const auto s1 = quick_state(ref.particles());
  EXPECT_NEAR(s1.momentum_x, s0.momentum_x, 1e-3);
  EXPECT_NEAR(s1.momentum_y, s0.momentum_y, 1e-3);
}

TEST(Diagnostics, DeviationHelpersRequireAlignment) {
  Block a(2);
  a[0].id = 0;
  a[1].id = 1;
  Block b(2);
  b[0].id = 1;
  b[1].id = 0;
  EXPECT_THROW(max_force_deviation(a, b), PreconditionError);
}

}  // namespace
