// End-to-end multi-process acceptance: a 4-rank-group socket simulation —
// four OS processes, a full Unix-domain-socket mesh, real serialized
// payloads — must produce trajectories, CostLedger-derived report fields,
// and a full message trace bitwise identical to the single-process modeled
// arm. This is the ISSUE's acceptance gate and CI's transport e2e job.
//
// Fork discipline: the modeled baseline is computed BEFORE the fork (so
// every process inherits it and can self-check), the ProcessGroup forks
// before any thread exists, children compare and _Exit (no gtest teardown
// in a forked child), and the parent asserts its own comparison plus that
// every child exited zero. The transport endpoint is destroyed before
// children are reaped — its destructor barriers against the peers.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>

#include "machine/presets.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "vmpi/socket_transport.hpp"
#include "vmpi/trace.hpp"
#include "vmpi/transport.hpp"

namespace {

using namespace canb;
using Sim = sim::Simulation<particles::InverseSquareRepulsion>;

constexpr int kSteps = 10;

struct RunResult {
  std::string trace;
  particles::Block state;
  sim::RunReport report;
};

RunResult run_arm(std::shared_ptr<vmpi::Transport> transport) {
  Sim::Config cfg;
  cfg.method = sim::Method::CaCutoff;
  cfg.p = 32;
  cfg.c = 2;
  cfg.machine = machine::hopper();
  cfg.kernel = {1e-4, 1e-2};
  cfg.cutoff = 0.12;
  cfg.dt = 1e-4;
  cfg.transport = std::move(transport);
  Sim s(cfg, particles::init_uniform(256, cfg.box, 2013, 0.01));
  vmpi::TraceRecorder rec;
  s.comm().set_trace(&rec);
  s.run(kSteps);
  return {vmpi::serialize_trace(rec), s.gather(), s.report()};
}

/// Plain-bool comparison (no gtest in forked children).
bool bits_equal(float a, float b) {
  return std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b);
}

bool runs_equal(const RunResult& got, const RunResult& want) {
  if (got.trace != want.trace) return false;
  if (got.state.size() != want.state.size()) return false;
  for (std::size_t i = 0; i < got.state.size(); ++i) {
    const auto& g = got.state[i];
    const auto& w = want.state[i];
    if (g.id != w.id || !bits_equal(g.px, w.px) || !bits_equal(g.py, w.py) ||
        !bits_equal(g.vx, w.vx) || !bits_equal(g.vy, w.vy) || !bits_equal(g.fx, w.fx) ||
        !bits_equal(g.fy, w.fy))
      return false;
  }
  const auto& gr = got.report;
  const auto& wr = want.report;
  return gr.messages == wr.messages && gr.bytes == wr.bytes && gr.compute == wr.compute &&
         gr.broadcast == wr.broadcast && gr.skew == wr.skew && gr.shift == wr.shift &&
         gr.reduce == wr.reduce && gr.reassign == wr.reassign && gr.wall == wr.wall &&
         gr.imbalance == wr.imbalance;
}

void run_four_process_case(double drop_rate) {
  // Baseline first: forked children inherit it and self-check against it.
  const auto want = run_arm(nullptr);
  const std::string dir = vmpi::make_rendezvous_dir();

  vmpi::ProcessGroup pg(4);  // forks 3 children; parent is group 0
  bool ok = false;
  {
    vmpi::SocketConfig sc;
    sc.ranks = 32;
    sc.groups = 4;
    sc.group = pg.group();
    sc.dir = dir;
    sc.drop_rate = drop_rate;
    sc.drop_seed = 7;
    auto t = std::make_shared<vmpi::SocketTransport>(sc);
    const auto got = run_arm(t);
    ok = runs_equal(got, want);
    if (pg.primary() && drop_rate > 0.0) {
      // The lossy arm must actually have exercised the reliable channel.
      ok = ok && t->stats().retransmits > 0;
    }
    // Scope exit drops the last reference: flush + close-barrier runs here,
    // while all four processes are still alive.
  }
  if (!pg.primary()) std::_Exit(ok ? 0 : 1);

  EXPECT_TRUE(ok) << "socket arm diverged from the modeled baseline in group 0";
  EXPECT_EQ(pg.wait_children(), 0) << "a child group diverged or crashed";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(TransportE2E, FourProcessSocketMatchesModeledBitwise) { run_four_process_case(0.0); }

TEST(TransportE2E, FourProcessSocketRecoversFromDropInjection) {
  run_four_process_case(/*drop_rate=*/0.1);
}

}  // namespace
