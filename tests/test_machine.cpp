// Machine models: collective cost models, topology hop math, presets.
#include <gtest/gtest.h>

#include "machine/collective_model.hpp"
#include "machine/machine_model.hpp"
#include "machine/presets.hpp"
#include "machine/topology.hpp"
#include "support/assert.hpp"

namespace {

using namespace canb;
using namespace canb::machine;

// --- collective models --------------------------------------------------------

TEST(Collectives, IdealLogTreeScalesLogarithmically) {
  auto model = make_ideal_log_tree(1e-6, 1e-9);
  const CollectiveContext c2{2, 1000, 1024, false};
  const CollectiveContext c16{16, 1000, 1024, false};
  EXPECT_DOUBLE_EQ(model->broadcast_time(c16), 4.0 * model->broadcast_time(c2));
  EXPECT_DOUBLE_EQ(model->broadcast_time(c2), model->reduce_time(c2));
  EXPECT_EQ(model->critical_messages(16), 4);
  EXPECT_EQ(model->critical_messages(1), 0);
}

TEST(Collectives, SingleMemberCollectiveIsFree) {
  auto model = make_ideal_log_tree(1e-6, 1e-9);
  EXPECT_DOUBLE_EQ(model->broadcast_time({1, 1e6, 1024, false}), 0.0);
}

TEST(Collectives, SaturatingTreeGrowsWithMachineScale) {
  auto model = make_saturating_tree(1e-6, 1e-9, 0.02, 1024);
  const CollectiveContext small{16, 1000, 1024, false};
  const CollectiveContext big{16, 1000, 16384, false};
  // Same team size, bigger machine: more contention.
  EXPECT_GT(model->broadcast_time(big), model->broadcast_time(small));
  // Contention term is quadratic in machine scale.
  const CollectiveContext mid{16, 1000, 2048, false};
  const double extra_mid = model->broadcast_time(mid) - model->broadcast_time(small);
  const double ideal16 = make_ideal_log_tree(1e-6, 1e-9)->broadcast_time(small);
  (void)ideal16;
  const double extra_big = model->broadcast_time(big) - model->broadcast_time(small);
  EXPECT_GT(extra_big, 10.0 * extra_mid);
}

TEST(Collectives, SaturatingTreeMakesIntermediateCOptimal) {
  // The crossover mechanism of Fig. 2b: per-step reduce cost rises with c
  // while shift cost falls as 1/c^2; the sum is minimized at an interior c.
  auto model = make_saturating_tree(8e-6, 1.7e-10, 0.02, 1024);
  const int p = 24576;
  const double n = 196608;
  auto total_comm = [&](int c) {
    const double w = c * n / p * 52.0;
    const double shifts = (static_cast<double>(p) / (c * c)) * (8e-6 + 1.7e-10 * w);
    return shifts + 2 * model->reduce_time({c, w, p, false});
  };
  const double t1 = total_comm(1);
  const double t16 = total_comm(16);
  const double t64 = total_comm(64);
  EXPECT_LT(t16, t1);
  EXPECT_LT(t16, t64);
}

TEST(Collectives, HardwareTreeOnlyHelpsWholePartition) {
  auto fallback = make_saturating_tree(1e-6, 1e-9, 0.02, 1024);
  auto tree = make_hardware_tree(5e-6, 3.5e-8, fallback);
  const CollectiveContext partial{64, 1e6, 32768, false};
  const CollectiveContext whole{32768, 1e6, 32768, true};
  EXPECT_DOUBLE_EQ(tree->broadcast_time(partial), fallback->broadcast_time(partial));
  EXPECT_LT(tree->broadcast_time(whole), fallback->broadcast_time(whole));
  EXPECT_NEAR(tree->broadcast_time(whole), 5e-6 + 3.5e-8 * 1e6, 1e-12);
}

// --- topology -------------------------------------------------------------------

TEST(Topology, RingHopsWrapAround) {
  const auto t = Topology::ring(10);
  EXPECT_EQ(t.hops(0, 1), 1);
  EXPECT_EQ(t.hops(0, 9), 1);
  EXPECT_EQ(t.hops(0, 5), 5);
  EXPECT_EQ(t.hops(2, 2), 0);
  EXPECT_EQ(t.diameter(), 5);
}

TEST(Topology, Torus3dHopsAreManhattanWithWrap) {
  const auto t = Topology::torus3d(4, 4, 4);
  EXPECT_EQ(t.size(), 64);
  EXPECT_EQ(t.hops(0, 1), 1);          // +x neighbor
  EXPECT_EQ(t.hops(0, 3), 1);          // wrap in x
  EXPECT_EQ(t.hops(0, 4), 1);          // +y neighbor
  EXPECT_EQ(t.hops(0, 16), 1);         // +z neighbor
  EXPECT_EQ(t.hops(0, 1 + 4 + 16), 3); // diagonal
  EXPECT_EQ(t.diameter(), 6);
}

TEST(Topology, BalancedTorusCoversAllRanks) {
  for (int p : {8, 24, 64, 100, 24576, 32768}) {
    const auto t = Topology::balanced_torus3d(p);
    EXPECT_EQ(t.size(), p) << p;
  }
}

TEST(Topology, FullyConnectedHasUnitHops) {
  const auto t = Topology::fully_connected(5);
  EXPECT_EQ(t.hops(0, 4), 1);
  EXPECT_EQ(t.hops(3, 3), 0);
  EXPECT_EQ(t.diameter(), 1);
}

TEST(Topology, RejectsOutOfRangeRanks) {
  const auto t = Topology::ring(4);
  EXPECT_THROW(t.hops(0, 4), PreconditionError);
}

// --- machine model ----------------------------------------------------------------

TEST(MachineModel, PointToPointCost) {
  MachineModel m;
  m.alpha = 1e-6;
  m.beta = 1e-9;
  m.collectives = make_ideal_log_tree(1e-6, 1e-9);
  EXPECT_DOUBLE_EQ(m.p2p_time(1000), 1e-6 + 1e-6);
  m.shift_beta_factor = 0.5;
  EXPECT_DOUBLE_EQ(m.shift_time(1000), 1e-6 + 0.5e-6);
  EXPECT_DOUBLE_EQ(m.compute_time(100), 100 * m.gamma);
}

TEST(MachineModel, ValidateCatchesMissingCollectives) {
  MachineModel m;
  m.collectives = nullptr;
  EXPECT_THROW(m.validate(), PreconditionError);
}

// --- presets -----------------------------------------------------------------------

TEST(Presets, AllPresetsValidate) {
  EXPECT_NO_THROW(hopper().validate());
  EXPECT_NO_THROW(intrepid().validate());
  EXPECT_NO_THROW(intrepid(true).validate());
  EXPECT_NO_THROW(laptop().validate());
  EXPECT_NO_THROW(with_ideal_collectives(hopper()).validate());
}

TEST(Presets, IntrepidIsSlowerThanHopper) {
  // BlueGene/P cores run at 850 MHz vs Hopper's 2.1 GHz Opterons; the
  // calibrated per-interaction time must reflect that.
  EXPECT_GT(intrepid().gamma, hopper().gamma);
  EXPECT_GT(intrepid().beta, hopper().beta);
}

TEST(Presets, IntrepidTorusShiftsExploitBidirectionality) {
  EXPECT_DOUBLE_EQ(intrepid(false, true).shift_beta_factor, 0.5);
  EXPECT_DOUBLE_EQ(intrepid(false, false).shift_beta_factor, 1.0);
}

TEST(Presets, IdealCollectivesRemoveContention) {
  const auto real = hopper();
  const auto ideal = with_ideal_collectives(hopper());
  const CollectiveContext big_team{64, 26624, 24576, false};
  EXPECT_GT(real.reduce_time(big_team), 10.0 * ideal.reduce_time(big_team));
}

}  // namespace
