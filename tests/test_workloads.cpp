// Workload generators: density gradient and two-stream distributions.
#include <gtest/gtest.h>

#include "particles/init.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace {

using namespace canb;
using particles::Box;

TEST(Gradient, DensityFollowsTheSlope) {
  const Box box = Box::reflective_1d(1.0);
  const int n = 40000;
  const auto ps = particles::init_gradient(n, box, 1.0, 7);
  ASSERT_EQ(ps.size(), static_cast<std::size_t>(n));
  // With slope 1.0, density at x is (1 + (x - 1/2)) = x + 1/2: the right
  // half holds 5/8 of the mass.
  int right = 0;
  for (const auto& p : ps) {
    ASSERT_GE(p.px, 0.0f);
    ASSERT_LE(p.px, 1.0f);
    if (p.px > 0.5f) ++right;
  }
  EXPECT_NEAR(static_cast<double>(right) / n, 5.0 / 8.0, 0.01);
}

TEST(Gradient, ZeroSlopeIsUniform) {
  const Box box = Box::reflective_1d(1.0);
  const auto ps = particles::init_gradient(20000, box, 0.0, 7);
  RunningStats sx;
  for (const auto& p : ps) sx.add(p.px);
  EXPECT_NEAR(sx.mean(), 0.5, 0.01);
}

TEST(Gradient, RejectsInvalidSlope) {
  const Box box = Box::reflective_1d(1.0);
  EXPECT_THROW(particles::init_gradient(10, box, 2.5, 1), PreconditionError);
  EXPECT_THROW(particles::init_gradient(10, box, -0.1, 1), PreconditionError);
}

TEST(TwoStream, HalvesCounterStream) {
  const Box box = Box::reflective_2d(1.0);
  const auto ps = particles::init_two_stream(1000, box, 0.5, 0.01, 3);
  double top_vx = 0;
  double bottom_vx = 0;
  int top = 0;
  int bottom = 0;
  for (const auto& p : ps) {
    if (p.py > 0.5f) {
      top_vx += p.vx;
      ++top;
    } else {
      bottom_vx += p.vx;
      ++bottom;
    }
  }
  ASSERT_GT(top, 0);
  ASSERT_GT(bottom, 0);
  EXPECT_NEAR(top_vx / top, 0.5, 0.05);
  EXPECT_NEAR(bottom_vx / bottom, -0.5, 0.05);
}

TEST(TwoStream, DeterministicIdsAndBounds) {
  const Box box = Box::reflective_2d(2.0);
  const auto a = particles::init_two_stream(64, box, 1.0, 0.1, 11);
  const auto b = particles::init_two_stream(64, box, 1.0, 0.1, 11);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<int>(i));
    EXPECT_EQ(a[i].px, b[i].px);
    EXPECT_TRUE(particles::inside(a[i], box));
  }
}

}  // namespace
