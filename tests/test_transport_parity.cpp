// Cross-backend parity: running a full simulation over a *real* transport
// (routed modeled queues, ranks-as-threads shmem, or a genuine 2-process-
// group Unix-socket mesh driven in-process) must be bitwise identical to
// the no-transport modeled arm — trajectories, every CostLedger-derived
// report field, and the full serialized message trace. The matrix extends
// tests/test_data_plane.cpp's idiom: backends x CA engines x host thread
// counts, plus a lossy socket arm that must recover through the reliable
// channel without perturbing anything.
//
// Why this is a strong test: the primitives charge costs BEFORE bytes move
// (charge-before-move), but receivers ADOPT the wire bytes, so the channel
// is load-bearing for trajectories. A serialization bug, a flow mix-up, a
// lost frame, or a fold-order change in the transport reduce arm all show
// up as a bitwise diff here.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "machine/presets.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "support/parallel.hpp"
#include "vmpi/socket_transport.hpp"
#include "vmpi/trace.hpp"
#include "vmpi/transport.hpp"

namespace {

using namespace canb;
using Sim = sim::Simulation<particles::InverseSquareRepulsion>;

constexpr int kSteps = 3;

::testing::AssertionResult bits_equal(float a, float b) {
  if (std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ (bits 0x" << std::hex
         << std::bit_cast<std::uint32_t>(a) << " vs 0x" << std::bit_cast<std::uint32_t>(b)
         << ")";
}

void expect_state_bitwise_equal(const particles::Block& got, const particles::Block& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].id, want[i].id);
    EXPECT_TRUE(bits_equal(got[i].fx, want[i].fx)) << "fx of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].fy, want[i].fy)) << "fy of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].px, want[i].px)) << "px of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].py, want[i].py)) << "py of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].vx, want[i].vx)) << "vx of particle " << got[i].id;
    EXPECT_TRUE(bits_equal(got[i].vy, want[i].vy)) << "vy of particle " << got[i].id;
  }
}

void expect_report_field_equal(const sim::RunReport& got, const sim::RunReport& want) {
  EXPECT_EQ(got.messages, want.messages);
  EXPECT_EQ(got.bytes, want.bytes);
  EXPECT_EQ(got.compute, want.compute);
  EXPECT_EQ(got.broadcast, want.broadcast);
  EXPECT_EQ(got.skew, want.skew);
  EXPECT_EQ(got.shift, want.shift);
  EXPECT_EQ(got.reduce, want.reduce);
  EXPECT_EQ(got.reassign, want.reassign);
  EXPECT_EQ(got.wall, want.wall);
  EXPECT_EQ(got.imbalance, want.imbalance);
}

// --- one arm of the matrix ---------------------------------------------------

struct Case {
  sim::Method method = sim::Method::CaAllPairs;
  double cutoff = 0.0;
  int p = 16;
};

constexpr Case kAllPairs{sim::Method::CaAllPairs, 0.0, 16};
constexpr Case kCutoff{sim::Method::CaCutoff, 0.12, 32};

struct RunResult {
  std::string trace;
  particles::Block state;
  sim::RunReport report;
};

RunResult run_arm(const Case& cs, int threads, std::shared_ptr<vmpi::Transport> transport) {
  Sim::Config cfg;
  cfg.method = cs.method;
  cfg.p = cs.p;
  cfg.c = 2;
  cfg.machine = machine::hopper();
  cfg.kernel = {1e-4, 1e-2};
  cfg.cutoff = cs.cutoff;
  cfg.dt = 1e-4;
  cfg.transport = std::move(transport);
  Sim s(cfg, particles::init_uniform(256, cfg.box, 2013, 0.01));
  if (threads > 1) s.set_host_pool(std::make_shared<ThreadPool>(threads));
  vmpi::TraceRecorder rec;
  s.comm().set_trace(&rec);
  s.run(kSteps);
  return {vmpi::serialize_trace(rec), s.gather(), s.report()};
}

void expect_run_equal(const RunResult& got, const RunResult& want) {
  expect_state_bitwise_equal(got.state, want.state);
  expect_report_field_equal(got.report, want.report);
  EXPECT_EQ(got.trace, want.trace) << "full message trace diverged";
}

// --- single-endpoint backends across host thread counts ----------------------

void run_single_endpoint_matrix(const Case& cs) {
  const auto want = run_arm(cs, /*threads=*/1, nullptr);  // the modeled arm
  for (const int threads : {1, 2, 8}) {
    {
      SCOPED_TRACE(::testing::Message() << "routed modeled, " << threads << " threads");
      expect_run_equal(run_arm(cs, threads, std::make_shared<vmpi::ModeledTransport>(cs.p)), want);
    }
    {
      SCOPED_TRACE(::testing::Message() << "shmem, " << threads << " threads");
      auto t = std::make_shared<vmpi::ShmemTransport>(cs.p);
      expect_run_equal(run_arm(cs, threads, t), want);
      EXPECT_GT(t->stats().frames_sent, 0u) << "the run must actually use the fabric";
    }
  }
}

TEST(TransportParity, CaAllPairsSingleEndpointBackends) { run_single_endpoint_matrix(kAllPairs); }

TEST(TransportParity, CaCutoffSingleEndpointBackends) { run_single_endpoint_matrix(kCutoff); }

// --- the socket mesh: two process groups, SPMD lockstep, in-process ----------
//
// Each group runs the FULL simulation (every process executes all p ranks;
// locally-owned destinations adopt wire bytes, the rest keep the replicated
// copy). Both groups must therefore finish bitwise identical to the
// modeled arm — group 0's output is authoritative, group 1 matching too
// pins the replication claim.

void run_socket_matrix(const Case& cs, int threads, double drop_rate) {
  const auto want = run_arm(cs, 1, nullptr);
  const std::string dir = vmpi::make_rendezvous_dir();
  RunResult results[2];
  std::uint64_t wire_frames[2] = {0, 0};
  auto group_main = [&](int group) {
    vmpi::SocketConfig sc;
    sc.ranks = cs.p;
    sc.groups = 2;
    sc.group = group;
    sc.dir = dir;
    sc.drop_rate = drop_rate;
    auto t = std::make_shared<vmpi::SocketTransport>(sc);  // blocks on rendezvous
    results[group] = run_arm(cs, threads, t);
    wire_frames[group] = t->stats().frames_sent;
    // `t` (the last reference) dies here: flush + close barrier against
    // the peer group, which is why both groups run concurrently.
  };
  std::thread other(group_main, 1);
  group_main(0);
  other.join();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  {
    SCOPED_TRACE("socket group 0");
    expect_run_equal(results[0], want);
  }
  {
    SCOPED_TRACE("socket group 1 (replicated arm)");
    expect_run_equal(results[1], want);
  }
  EXPECT_GT(wire_frames[0], 0u);
  EXPECT_GT(wire_frames[1], 0u);
}

TEST(TransportParity, CaAllPairsSocketMesh) { run_socket_matrix(kAllPairs, /*threads=*/1, 0.0); }

TEST(TransportParity, CaCutoffSocketMesh) { run_socket_matrix(kCutoff, 1, 0.0); }

TEST(TransportParity, CaAllPairsSocketMeshThreadedHosts) {
  run_socket_matrix(kAllPairs, /*threads=*/8, 0.0);
}

TEST(TransportParity, CaCutoffSocketMeshLossyLink) {
  // 25% egress drop on every sequenced frame: the reliable channel must
  // recover losslessly and nothing observable may move.
  run_socket_matrix(kCutoff, 1, 0.25);
}

// --- transports compose with the modeled fault injection ---------------------
//
// PerturbationModel perturbs modeled *costs*; the transport moves real
// bytes. They must stack without interfering: faulted-modeled and
// faulted-shmem agree bitwise (including retry/timeout ledger fields).

TEST(TransportParity, ShmemUnderFaultInjectionMatchesModeled) {
  auto faulted = [](std::shared_ptr<vmpi::Transport> t) {
    Sim::Config cfg;
    cfg.method = sim::Method::CaAllPairs;
    cfg.p = 16;
    cfg.c = 2;
    cfg.machine = machine::hopper();
    cfg.kernel = {1e-4, 1e-2};
    cfg.dt = 1e-4;
    vmpi::FaultConfig fc;
    fc.seed = 4242;
    fc.straggler_rate = 0.05;
    fc.jitter = 0.1;
    fc.drop_rate = 0.02;
    fc.link_degrade_rate = 0.1;
    cfg.fault = fc;
    cfg.transport = std::move(t);
    Sim s(cfg, particles::init_uniform(256, cfg.box, 2013, 0.01));
    vmpi::TraceRecorder rec;
    s.comm().set_trace(&rec);
    s.run(kSteps);
    return RunResult{vmpi::serialize_trace(rec), s.gather(), s.report()};
  };
  const auto want = faulted(nullptr);
  expect_run_equal(faulted(std::make_shared<vmpi::ShmemTransport>(16)), want);
}

}  // namespace
