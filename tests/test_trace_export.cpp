// Chrome-trace export from telemetry spans: sampling semantics and
// well-formed JSON output (obs/export.hpp; replaces the old manual
// sim::ClockSampler flow).
#include <gtest/gtest.h>

#include <sstream>

#include "core/ca_all_pairs.hpp"
#include "core/policy.hpp"
#include "machine/presets.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "support/assert.hpp"

namespace {

using namespace canb;

TEST(TelemetrySpans, SamplesPerRankClocksAtPhaseBoundaries) {
  core::PhantomPolicy policy({0.0, false});
  core::CaAllPairs<core::PhantomPolicy> engine(
      {4, 2, machine::laptop()}, policy, std::vector<core::PhantomBlock>(2, {4}));
  obs::Telemetry telem(obs::ObsLevel::Full);
  engine.set_telemetry(&telem);
  engine.step();

  const auto& samples = telem.spans().samples();
  // baseline + broadcast/skew/interact (steps_ == 1 at p=4, c=2) +
  // reduce + integrate.
  ASSERT_GE(samples.size(), 5u);
  EXPECT_EQ(samples.front().label, "start");
  EXPECT_EQ(samples.front().step, -1);
  EXPECT_EQ(samples.front().clocks, (std::vector<double>{0, 0, 0, 0}));
  EXPECT_EQ(samples[1].label, "broadcast");
  EXPECT_EQ(samples[1].phase, vmpi::Phase::Broadcast);
  EXPECT_EQ(samples[1].step, 0);
  for (const auto& s : samples) ASSERT_EQ(s.clocks.size(), 4u);
  // Clocks never run backwards between samples.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    for (std::size_t r = 0; r < 4; ++r)
      EXPECT_GE(samples[i].clocks[r], samples[i - 1].clocks[r]);
  }
  // The final sample matches the engine's clocks.
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(samples.back().clocks[static_cast<std::size_t>(r)], engine.comm().clock(r));
}

TEST(TraceExport, ProducesParseableJsonWithRankTracks) {
  core::PhantomPolicy policy({0.0, false});
  core::CaAllPairs<core::PhantomPolicy> engine(
      {8, 2, machine::laptop()}, policy, std::vector<core::PhantomBlock>(4, {4}));
  obs::Telemetry telem(obs::ObsLevel::Full);
  engine.set_telemetry(&telem);
  engine.step();

  obs::RunManifest manifest;
  manifest.machine = "laptop";
  manifest.set("p", 8).set("c", 2);
  std::ostringstream out;
  obs::write_chrome_trace(out, telem.spans(), telem.trace(), &manifest);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // duration events
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);     // a track per rank
  EXPECT_NE(json.find("\"cat\":\"shift\""), std::string::npos);
  EXPECT_NE(json.find("rank 7"), std::string::npos);        // named tracks
  EXPECT_NE(json.find("msg r"), std::string::npos);         // message markers
  EXPECT_NE(json.find("\"otherData\""), std::string::npos); // manifest rides along
  EXPECT_NE(json.find("\"machine\":\"laptop\""), std::string::npos);
  // Braces/brackets balance (cheap well-formedness check).
  long depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceExport, RequiresSamples) {
  obs::SpanTimeline empty;
  std::ostringstream out;
  EXPECT_THROW(obs::write_chrome_trace(out, empty), PreconditionError);
}

}  // namespace
