// Chrome-trace export: sampler semantics and well-formed JSON output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/ca_all_pairs.hpp"
#include "core/policy.hpp"
#include "machine/presets.hpp"
#include "sim/trace_export.hpp"
#include "support/assert.hpp"

namespace {

using namespace canb;

TEST(ClockSampler, CapturesPerRankClocks) {
  vmpi::VirtualComm vc(3, machine::laptop());
  sim::ClockSampler sampler;
  sampler.sample(vc, "start");
  vc.advance(1, vmpi::Phase::Compute, 2.5);
  sampler.sample(vc, "after-compute");
  ASSERT_EQ(sampler.samples().size(), 2u);
  EXPECT_EQ(sampler.samples()[0].clocks, (std::vector<double>{0, 0, 0}));
  EXPECT_EQ(sampler.samples()[1].clocks, (std::vector<double>{0, 2.5, 0}));
  EXPECT_EQ(sampler.samples()[1].label, "after-compute");
}

TEST(TraceExport, ProducesParseableJsonWithRankTracks) {
  const std::string path = "/tmp/canb_test_trace.json";
  core::PhantomPolicy policy({0.0, false});
  core::CaAllPairs<core::PhantomPolicy> engine(
      {8, 2, machine::laptop()}, policy, std::vector<core::PhantomBlock>(4, {4}));
  vmpi::TraceRecorder trace;
  engine.comm().set_trace(&trace);
  sim::ClockSampler sampler;
  sampler.sample(engine.comm(), "init");
  engine.step();
  sampler.sample(engine.comm(), "step-1");
  sim::export_chrome_trace(path, sampler, &trace);

  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);   // duration events
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);       // a track per rank
  EXPECT_NE(json.find("step-1"), std::string::npos);
  EXPECT_NE(json.find("msg shift"), std::string::npos);       // flow markers
  // Braces/brackets balance (cheap well-formedness check).
  long depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST(TraceExport, RequiresSamples) {
  sim::ClockSampler empty;
  EXPECT_THROW(sim::export_chrome_trace("/tmp/canb_never.json", empty), PreconditionError);
}

}  // namespace
