// End-to-end integration: all decomposition methods evolve the same system
// for many steps and must agree with each other and the serial reference —
// the strongest statement that every engine implements the same physics.
#include <gtest/gtest.h>

#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/reference.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;
using particles::InverseSquareRepulsion;
using Sim = sim::Simulation<InverseSquareRepulsion>;

constexpr int kSteps = 30;
constexpr double kDt = 5e-4;
constexpr double kCutoff = 0.25;

Block run_method(sim::Method method, const Block& init, const Box& box, double cutoff) {
  Sim::Config cfg;
  cfg.method = method;
  // The replicated cutoff engine needs a 4x4 team grid for the rc=0.25
  // window, hence 32 ranks at c=2; everything else runs 16 ranks.
  cfg.p = method == sim::Method::CaCutoff ? 32 : 16;
  cfg.c = method == sim::Method::CaAllPairs || method == sim::Method::CaCutoff ? 2 : 1;
  cfg.machine = machine::laptop();
  cfg.box = box;
  cfg.kernel = InverseSquareRepulsion{1e-4, 1e-2};
  cfg.cutoff = cutoff;
  cfg.dt = kDt;
  Sim s(cfg, init);
  s.run(kSteps);
  return s.gather();
}

TEST(Integration, AllPairsMethodsAgreeOverLongRuns) {
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(96, box, 2013, 0.05);

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, kDt});
  ref.run(kSteps);
  auto truth = ref.particles();
  particles::sort_by_id(truth);

  for (auto method : {sim::Method::CaAllPairs, sim::Method::ParticleRing,
                      sim::Method::ParticleAllGather, sim::Method::ForceDecomp}) {
    const auto got = run_method(method, init, box, 0.0);
    ASSERT_EQ(got.size(), truth.size()) << sim::method_name(method);
    EXPECT_LT(particles::max_position_deviation(got, truth), 5e-4)
        << sim::method_name(method);
  }
}

TEST(Integration, CutoffMethodsAgreeOverLongRuns) {
  const Box box = Box::reflective_2d(1.0);
  const auto init = particles::init_uniform(96, box, 2014, 0.05);

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, kDt, kCutoff});
  ref.run(kSteps);
  auto truth = ref.particles();
  particles::sort_by_id(truth);

  for (auto method :
       {sim::Method::CaCutoff, sim::Method::SpatialHalo, sim::Method::Midpoint}) {
    const auto got = run_method(method, init, box, kCutoff);
    ASSERT_EQ(got.size(), truth.size()) << sim::method_name(method);
    EXPECT_LT(particles::max_position_deviation(got, truth), 5e-4)
        << sim::method_name(method);
  }
}

TEST(Integration, EnergyAgreesAcrossMethods) {
  const Box box = Box::reflective_2d(1.0);
  const InverseSquareRepulsion kernel{1e-4, 1e-2};
  const auto init = particles::init_uniform(64, box, 5, 0.05);
  double first_energy = 0.0;
  bool have_first = false;
  for (auto method : {sim::Method::CaAllPairs, sim::Method::ForceDecomp,
                      sim::Method::ParticleRing}) {
    const auto got = run_method(method, init, box, 0.0);
    const auto e =
        particles::full_state(std::span<const particles::Particle>(got), box, kernel).total();
    if (!have_first) {
      first_energy = e;
      have_first = true;
    } else {
      EXPECT_NEAR(e, first_energy, std::abs(first_energy) * 1e-4)
          << sim::method_name(method);
    }
  }
}

}  // namespace
