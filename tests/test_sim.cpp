// The Simulation facade and run reports: every method produces the same
// physics, reports decompose cleanly, and the facade validates its inputs.
#include <gtest/gtest.h>

#include <sstream>

#include "machine/presets.hpp"
#include "particles/diagnostics.hpp"
#include "particles/init.hpp"
#include "particles/reference.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace canb;
using particles::Block;
using particles::Box;
using particles::InverseSquareRepulsion;
using Sim = sim::Simulation<InverseSquareRepulsion>;

Sim::Config base_config() {
  Sim::Config cfg;
  cfg.machine = machine::laptop();
  cfg.box = Box::reflective_2d(1.0);
  cfg.kernel = InverseSquareRepulsion{1e-4, 1e-2};
  cfg.dt = 1e-4;
  return cfg;
}

// --- all methods agree with the reference and each other ----------------------

class MethodsAgree : public ::testing::TestWithParam<sim::Method> {};

TEST_P(MethodsAgree, OneStepMatchesReference) {
  auto cfg = base_config();
  cfg.method = GetParam();
  cfg.p = 16;
  cfg.c = cfg.method == sim::Method::CaAllPairs ? 2 : 1;
  if (cfg.method == sim::Method::CaCutoff || cfg.method == sim::Method::SpatialHalo)
    cfg.cutoff = 0.2;  // mx=1 window fits the 4x4 grid

  const auto init = particles::init_uniform(64, cfg.box, 77, 0.01);
  Sim s(cfg, init);
  s.step();
  auto got = s.gather();

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {cfg.box, cfg.kernel, cfg.dt, cfg.cutoff});
  ref.step();
  auto want = ref.particles();
  particles::sort_by_id(want);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(particles::max_force_deviation(got, want), 2e-4);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodsAgree,
                         ::testing::Values(sim::Method::CaAllPairs, sim::Method::CaCutoff,
                                           sim::Method::ParticleRing,
                                           sim::Method::ParticleAllGather,
                                           sim::Method::ForceDecomp,
                                           sim::Method::SpatialHalo),
                         [](const auto& pinfo) {
                           std::string n = sim::method_name(pinfo.param);
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(Simulation, CutoffIn1dBoxUses1dDecomposition) {
  auto cfg = base_config();
  cfg.method = sim::Method::CaCutoff;
  cfg.box = Box::reflective_1d(1.0);
  cfg.p = 16;
  cfg.c = 2;
  cfg.cutoff = 0.25;
  const auto init = particles::init_uniform(64, cfg.box, 3, 0.01);
  Sim s(cfg, init);
  s.run(3);
  auto got = s.gather();

  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {cfg.box, cfg.kernel, cfg.dt, cfg.cutoff});
  ref.run(3);
  auto want = ref.particles();
  particles::sort_by_id(want);
  EXPECT_LT(particles::max_position_deviation(got, want), 1e-4);
}

// --- reports ---------------------------------------------------------------------

TEST(Report, PhasesSumToTotalAndTotalMatchesClock) {
  auto cfg = base_config();
  cfg.method = sim::Method::CaAllPairs;
  cfg.p = 16;
  cfg.c = 2;
  const auto init = particles::init_uniform(64, cfg.box, 5, 0.0);
  Sim s(cfg, init);
  s.run(4);
  const auto rep = s.report();
  EXPECT_EQ(rep.steps, 4);
  EXPECT_EQ(rep.p, 16);
  EXPECT_EQ(rep.c, 2);
  EXPECT_GT(rep.compute, 0.0);
  EXPECT_GT(rep.total(), rep.compute);
  // Wall is the true critical path; the per-phase maxima sum to at least it.
  EXPECT_NEAR(rep.wall * 4, s.comm().max_clock(), 1e-12);
  EXPECT_GE(rep.total() + 1e-15, rep.wall);
  // Phase maxima can come from different ranks (leaders bound compute,
  // row>0 ranks bound the skew), but the overshoot stays modest.
  EXPECT_LT(rep.total(), rep.wall * 1.5);
}

TEST(Report, PrintAndCsvContainLabel) {
  auto cfg = base_config();
  cfg.p = 4;
  const auto init = particles::init_uniform(16, cfg.box, 5, 0.0);
  Sim s(cfg, init);
  s.step();
  std::vector<sim::RunReport> reps{s.report("my-run")};
  std::ostringstream os;
  sim::print_reports(os, reps);
  EXPECT_NE(os.str().find("my-run"), std::string::npos);
  EXPECT_NE(os.str().find("total"), std::string::npos);
}

// --- validation --------------------------------------------------------------------

TEST(Simulation, RejectsCutoffMethodWithoutCutoff) {
  auto cfg = base_config();
  cfg.method = sim::Method::CaCutoff;
  cfg.p = 4;
  const auto init = particles::init_uniform(16, cfg.box, 5);
  EXPECT_THROW(Sim(cfg, init), PreconditionError);
}

TEST(Simulation, NearSquareFactors) {
  EXPECT_EQ(sim::near_square_factors(16), (std::pair<int, int>{4, 4}));
  EXPECT_EQ(sim::near_square_factors(12), (std::pair<int, int>{3, 4}));
  EXPECT_EQ(sim::near_square_factors(7), (std::pair<int, int>{1, 7}));
  EXPECT_EQ(sim::near_square_factors(1), (std::pair<int, int>{1, 1}));
}

// --- physics sanity through the facade -----------------------------------------------

TEST(Simulation, RepulsionSpreadsParticlesApart) {
  auto cfg = base_config();
  cfg.method = sim::Method::CaAllPairs;
  cfg.p = 8;
  cfg.c = 2;
  cfg.kernel = InverseSquareRepulsion{1e-3, 1e-2};
  cfg.dt = 1e-3;
  // Clustered start: repulsion must grow the mean pairwise distance.
  const auto init = particles::init_clusters(32, cfg.box, 1, 0.02, 9);
  auto mean_r = [](const Block& ps) {
    double acc = 0;
    int cnt = 0;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      for (std::size_t j = i + 1; j < ps.size(); ++j) {
        const double dx = static_cast<double>(ps[i].px) - ps[j].px;
        const double dy = static_cast<double>(ps[i].py) - ps[j].py;
        acc += std::sqrt(dx * dx + dy * dy);
        ++cnt;
      }
    }
    return acc / cnt;
  };
  const double before = mean_r(init);
  Sim s(cfg, init);
  s.run(50);
  const double after = mean_r(s.gather());
  EXPECT_GT(after, before * 1.05);
}

TEST(Simulation, StepCountTracks) {
  auto cfg = base_config();
  cfg.p = 4;
  const auto init = particles::init_uniform(16, cfg.box, 5);
  Sim s(cfg, init);
  EXPECT_EQ(s.steps_taken(), 0);
  s.run(3);
  EXPECT_EQ(s.steps_taken(), 3);
}

}  // namespace
