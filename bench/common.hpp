// Shared helpers for the figure-reproduction benches.
//
// Every bench replays the paper's experiment at the paper's machine and
// problem scale on phantom payloads: the communication schedule, ledger,
// and per-rank clocks are exactly those of the real engines (tests assert
// this equivalence), so the printed series are the model's prediction of
// the paper's plots. See EXPERIMENTS.md for paper-vs-model commentary.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/init.hpp"
#include "sim/report.hpp"
#include "support/table.hpp"

namespace canb::bench {

inline constexpr int kStepsPerRun = 3;  ///< timesteps averaged per data point

/// Uniform phantom team blocks for an all-pairs run (n divisible by q is
/// not required; the remainder spreads over the first teams).
inline std::vector<core::PhantomBlock> even_counts(std::uint64_t n, int q) {
  std::vector<core::PhantomBlock> out(static_cast<std::size_t>(q));
  const std::uint64_t base = n / static_cast<std::uint64_t>(q);
  const std::uint64_t extra = n % static_cast<std::uint64_t>(q);
  for (int t = 0; t < q; ++t)
    out[static_cast<std::size_t>(t)].count = base + (static_cast<std::uint64_t>(t) < extra);
  return out;
}

/// Phantom team counts from a real particle sample binned spatially. The
/// paper "set the parameters of the simulation to ensure the particle
/// distribution remains nearly uniform over time" (Section IV-D), so we
/// sample a jittered lattice: per-team counts vary by +/- a few particles,
/// and the load imbalance the benches report comes from the physical
/// boundary-window clipping, not from sampling noise.
inline std::vector<core::PhantomBlock> spatial_counts_1d(int n, int q, std::uint64_t seed) {
  const auto box = particles::Box::reflective_1d(1.0);
  const auto blocks =
      decomp::split_spatial_1d(particles::init_lattice(n, box, /*jitter=*/0.9, seed), box, q);
  std::vector<core::PhantomBlock> out;
  out.reserve(blocks.size());
  for (const auto& b : blocks) out.push_back({b.size()});
  return out;
}

inline std::vector<core::PhantomBlock> spatial_counts_2d(int n, int qx, int qy,
                                                         std::uint64_t seed) {
  const auto box = particles::Box::reflective_2d(1.0);
  const auto blocks =
      decomp::split_spatial_2d(particles::init_lattice(n, box, /*jitter=*/0.9, seed), box, qx, qy);
  std::vector<core::PhantomBlock> out;
  out.reserve(blocks.size());
  for (const auto& b : blocks) out.push_back({b.size()});
  return out;
}

/// One all-pairs CA data point at paper scale.
inline sim::RunReport run_ca_all_pairs(const machine::MachineModel& m, int p, int c,
                                       std::uint64_t n, int steps = kStepsPerRun) {
  core::PhantomPolicy policy({/*reassign_fraction=*/0.0, /*bulk=*/true});
  core::CaAllPairs<core::PhantomPolicy> engine({p, c, m}, policy, even_counts(n, p / c));
  engine.run(steps);
  return sim::summarize(engine.comm(), steps, "c=" + std::to_string(c), c);
}

/// One 1D-cutoff CA data point (rc = box/4 as in the paper's experiments).
// Phantom cutoff runs are stateless across steps (counts are steady-state),
/// so a single step per data point is exact.
inline sim::RunReport run_ca_cutoff_1d(const machine::MachineModel& m, int p, int c, int n,
                                       double rc_fraction = 0.25, int steps = 1) {
  const int q = p / c;
  const int mteams = core::window_radius_teams(rc_fraction, 1.0, q);
  core::PhantomPolicy policy({/*reassign_fraction=*/0.05, /*bulk=*/true});
  core::CaCutoff<core::PhantomPolicy> engine(
      {p, c, m, core::CutoffGeometry::make_1d(q, mteams), /*periodic=*/false}, policy,
      spatial_counts_1d(n, q, /*seed=*/1234));
  engine.run(steps);
  return sim::summarize(engine.comm(), steps, "c=" + std::to_string(c), c);
}

/// One 2D-cutoff CA data point.
inline sim::RunReport run_ca_cutoff_2d(const machine::MachineModel& m, int p, int c, int n,
                                       int qx, int qy, double rc_fraction = 0.25,
                                       int steps = 1) {
  const int mx = core::window_radius_teams(rc_fraction, 1.0, qx);
  const int my = core::window_radius_teams(rc_fraction, 1.0, qy);
  core::PhantomPolicy policy({/*reassign_fraction=*/0.05, /*bulk=*/true});
  core::CaCutoff<core::PhantomPolicy> engine(
      {p, c, m, core::CutoffGeometry::make_2d(qx, qy, mx, my), /*periodic=*/false}, policy,
      spatial_counts_2d(n, qx, qy, /*seed=*/1234));
  engine.run(steps);
  return sim::summarize(engine.comm(), steps, "c=" + std::to_string(c), c);
}

/// Valid all-pairs replication factors (powers of two) up to c_max.
inline std::vector<int> valid_all_pairs_cs(int p, int c_max) {
  std::vector<int> out;
  for (int c = 1; c <= c_max; c *= 2) {
    if (vmpi::valid_all_pairs_replication(p, c)) out.push_back(c);
  }
  return out;
}

inline void print_figure_header(const std::string& id, const std::string& what) {
  std::cout << "\n" << banner("Figure " + id) << "\n" << what << "\n\n";
}

/// When the CANB_CSV_DIR environment variable is set, writes the panel's
/// reports there as <name>.csv for replotting (scripts/plot_figures.py).
inline void maybe_write_csv(const std::string& name,
                            const std::vector<sim::RunReport>& reports) {
  const char* dir = std::getenv("CANB_CSV_DIR");
  if (!dir || reports.empty()) return;
  sim::write_reports_csv(std::string(dir) + "/" + name + ".csv", reports);
  std::cout << "  [csv: " << dir << "/" << name << ".csv]\n";
}

}  // namespace canb::bench
