// Cutoff methods head-to-head with REAL physics: the CA cutoff algorithm
// (c = 1 and tuned c), the plain halo-exchange spatial decomposition
// (Section II-C), and the midpoint method (Section II-D) on the same
// particle set, same kernel, same machine model — with trajectory
// agreement verified against the serial reference before timing anything.
//
// This is the only bench that runs real force arithmetic end-to-end, at a
// laptop-friendly scale (the figure benches replay paper scale on phantom
// payloads; this one demonstrates the full physics path of every engine).
#include <iostream>

#include "bench/common.hpp"
#include "core/ca_cutoff.hpp"
#include "core/midpoint.hpp"
#include "core/spatial_halo.hpp"
#include "decomp/partition.hpp"
#include "particles/diagnostics.hpp"
#include "particles/reference.hpp"

namespace {

using namespace canb;
using namespace canb::bench;
using particles::Block;
using particles::Box;
using particles::InverseSquareRepulsion;
using Policy = core::RealPolicy<InverseSquareRepulsion>;

constexpr int kSteps = 5;
constexpr double kCutoff = 0.125;

Policy make_policy(const Box& box) {
  return Policy({box, InverseSquareRepulsion{1e-4, 1e-2}, kCutoff, 1e-4});
}

template <class Blocks>
Block sorted(const Blocks& blocks) {
  auto all = decomp::concat(blocks);
  particles::sort_by_id(all);
  return all;
}

}  // namespace

int main() {
  std::cout << "CA-N-Body — cutoff methods head-to-head (real physics, q=64 teams, n=4096,\n"
            << "rc=l/8, reflective 1D box, Hopper cost model, " << kSteps << " steps)\n\n";
  const Box box = Box::reflective_1d(1.0);
  const int q = 64;
  const int n = 4096;
  const int m = core::window_radius_teams(kCutoff, box.lx, q);
  const auto init = particles::init_uniform(n, box, 42, 0.05);

  // Ground truth for trajectory agreement.
  particles::SerialReference<InverseSquareRepulsion> ref(
      init, {box, InverseSquareRepulsion{1e-4, 1e-2}, 1e-4, kCutoff});
  ref.run(kSteps);
  auto truth = ref.particles();
  particles::sort_by_id(truth);

  Table t({{"method", 22},
           {"p", 7},
           {"total(s)", 11, 5},
           {"comm(s)", 11, 5},
           {"msgs/step", 10, 1},
           {"KiB/step", 10, 1},
           {"max dev", 10, 2, true}});

  auto add_row = [&](const std::string& name, int p, const vmpi::VirtualComm& vc,
                     const Block& got) {
    const auto rep = sim::summarize(vc, kSteps, name, 1);
    t.add_row({name, static_cast<long long>(p), rep.total(), rep.communication(), rep.messages,
               rep.bytes / 1024.0, particles::max_force_deviation(got, truth)});
  };

  {
    core::SpatialHaloDecomposition<Policy> halo(
        {q, machine::hopper(), core::CutoffGeometry::make_1d(q, m), false}, make_policy(box),
        decomp::split_spatial_1d(init, box, q));
    halo.run(kSteps);
    add_row("spatial halo (II-C)", q, halo.comm(), sorted(halo.team_results()));
  }
  {
    core::MidpointMethod<InverseSquareRepulsion> mid(
        {q, machine::hopper(), core::CutoffGeometry::make_1d(q, m), false}, make_policy(box),
        decomp::split_spatial_1d(init, box, q));
    mid.run(kSteps);
    add_row("midpoint (II-D)", q, mid.comm(), sorted(mid.team_results()));
  }
  for (int c : {1, 4}) {
    const int qq = q;  // teams fixed; replication multiplies ranks
    core::CaCutoff<Policy> ca(
        {qq * c, c, machine::hopper(), core::CutoffGeometry::make_1d(qq, m), false},
        make_policy(box), decomp::split_spatial_1d(init, box, qq));
    ca.run(kSteps);
    add_row("ca cutoff c=" + std::to_string(c), qq * c, ca.comm(),
            sorted(ca.team_results()));
  }
  t.print(std::cout);
  std::cout << "\nReading: all four engines reproduce the serial trajectory (max dev is\n"
               "float-accumulation noise). The midpoint method moves ~half the halo\n"
               "volume; CA with replication trades memory for fewer, larger messages.\n";
  return 0;
}
