// Google-benchmark microbenches for the substrate hot paths: force
// kernels, block interactions, cell lists, vmpi primitives, and full
// engine steps. These measure *host* performance of the simulator itself
// (how fast the reproduction runs), not virtual machine time.
#include <benchmark/benchmark.h>

#include "core/ca_all_pairs.hpp"
#include "core/ca_cutoff.hpp"
#include "core/policy.hpp"
#include "decomp/partition.hpp"
#include "machine/presets.hpp"
#include "particles/batched_engine.hpp"
#include "particles/cell_list.hpp"
#include "particles/init.hpp"
#include "particles/kernels.hpp"
#include "vmpi/primitives.hpp"

namespace {

using namespace canb;
using particles::Box;
using particles::InverseSquareRepulsion;

void BM_KernelInverseSquare(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Box box = Box::reflective_2d(1.0);
  auto ps = particles::init_uniform(n, box, 1);
  const InverseSquareRepulsion k{1e-4, 1e-2};
  for (auto _ : state) {
    particles::clear_forces(ps);
    auto count = particles::accumulate_forces(std::span<particles::Particle>(ps),
                                              std::span<const particles::Particle>(ps), box, k);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1));
}
BENCHMARK(BM_KernelInverseSquare)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_KernelInverseSquareBatched(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Box box = Box::reflective_2d(1.0);
  auto ps = particles::init_uniform(n, box, 1);
  const InverseSquareRepulsion k{1e-4, 1e-2};
  for (auto _ : state) {
    particles::clear_forces(ps);
    auto count = particles::accumulate_forces_batched(
        std::span<particles::Particle>(ps), std::span<const particles::Particle>(ps), box, k);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1));
}
BENCHMARK(BM_KernelInverseSquareBatched)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CellListForces(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Box box = Box::reflective_2d(1.0);
  auto ps = particles::init_uniform(n, box, 1);
  const InverseSquareRepulsion k{1e-4, 1e-2};
  for (auto _ : state) {
    particles::clear_forces(ps);
    auto applied = particles::cell_list_forces(std::span<particles::Particle>(ps), box, k, 0.1);
    benchmark::DoNotOptimize(applied);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CellListForces)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_CellListForcesBatched(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Box box = Box::reflective_2d(1.0);
  auto ps = particles::init_uniform(n, box, 1);
  const InverseSquareRepulsion k{1e-4, 1e-2};
  for (auto _ : state) {
    particles::clear_forces(ps);
    auto applied = particles::cell_list_forces(std::span<particles::Particle>(ps), box, k, 0.1,
                                               particles::KernelEngine::Batched);
    benchmark::DoNotOptimize(applied);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CellListForcesBatched)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_ShiftRows(benchmark::State& state) {
  const auto p = static_cast<int>(state.range(0));
  vmpi::VirtualComm vc(p, machine::hopper());
  const auto g = vmpi::Grid2d::make(p, 4);
  std::vector<core::PhantomBlock> bufs(static_cast<std::size_t>(p), {16});
  for (auto _ : state) {
    vmpi::shift_rows(vc, g, 4, bufs, &core::PhantomPolicy::bytes);
    benchmark::DoNotOptimize(bufs.data());
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_ShiftRows)->Arg(1024)->Arg(8192)->Arg(32768);

void BM_TeamBroadcast(benchmark::State& state) {
  const auto p = static_cast<int>(state.range(0));
  vmpi::VirtualComm vc(p, machine::hopper());
  const auto g = vmpi::Grid2d::make(p, 8);
  std::vector<core::PhantomBlock> bufs(static_cast<std::size_t>(p), {16});
  for (auto _ : state) {
    vmpi::broadcast_teams(vc, g, bufs, &core::PhantomPolicy::bytes);
    benchmark::DoNotOptimize(bufs.data());
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_TeamBroadcast)->Arg(1024)->Arg(8192);

void BM_CaAllPairsStepReal(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const int p = 16;
  const int c = 2;
  const Box box = Box::reflective_2d(1.0);
  using Policy = core::RealPolicy<InverseSquareRepulsion>;
  Policy policy({box, InverseSquareRepulsion{1e-4, 1e-2}, 0.0, 1e-4});
  const auto init = particles::init_uniform(n, box, 3, 0.01);
  core::CaAllPairs<Policy> engine({p, c, machine::laptop()}, std::move(policy),
                                  decomp::split_even(init, p / c));
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1));
}
BENCHMARK(BM_CaAllPairsStepReal)->Arg(256)->Arg(1024);

void BM_CaAllPairsStepPhantomBulk(benchmark::State& state) {
  const auto p = static_cast<int>(state.range(0));
  core::PhantomPolicy policy({0.0, true});
  core::CaAllPairs<core::PhantomPolicy> engine(
      {p, 8, machine::hopper()}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(p / 8), {64}));
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_CaAllPairsStepPhantomBulk)->Arg(4096)->Arg(32768);

void BM_CaCutoffStepPhantom(benchmark::State& state) {
  const auto p = static_cast<int>(state.range(0));
  const int c = 4;
  const int q = p / c;
  const int m = q / 8;
  core::PhantomPolicy policy({0.05, true});
  core::CaCutoff<core::PhantomPolicy> engine(
      {p, c, machine::hopper(), core::CutoffGeometry::make_1d(q, m), false}, policy,
      std::vector<core::PhantomBlock>(static_cast<std::size_t>(q), {16}));
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_CaCutoffStepPhantom)->Arg(4096)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
