// Figure 6: "The effect of increased replication factors on execution time
// for 1D and 2D simulations with a cutoff radius."
//
//   6a: 1D-cutoff, Hopper,   p = 24,576, n = 196,608
//   6b: 2D-cutoff, Hopper,   p = 24,576, n = 196,608
//   6c: 1D-cutoff, Intrepid, p = 32,768, n = 262,144
//   6d: 2D-cutoff, Intrepid, p = 32,768, n = 262,144
//
// rc = 1/4 of the simulation box ("to allow reasonably many choices of c"),
// spatial decomposition with per-step re-assignment, reflective boundaries
// (the source of the boundary load imbalance the paper reports). The paper
// did not use topology-aware collectives here (the pattern does not match
// the torus), so Intrepid runs use plain point-to-point shifts.
#include <iostream>

#include "bench/common.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

void run_1d_panel(const std::string& id, const machine::MachineModel& m, int p, int n,
                  int c_max) {
  print_figure_header(id, "1D-cutoff, " + m.name + ", " + std::to_string(p) + " cores, " +
                              std::to_string(n) + " particles, rc = l/4");
  std::vector<sim::RunReport> reports;
  for (int c = 1; c <= c_max; c *= 2) {
    if (p % c != 0) continue;
    const int mteams = core::window_radius_teams(0.25, 1.0, p / c);
    if (!vmpi::valid_cutoff_replication(p, c, mteams)) continue;
    reports.push_back(run_ca_cutoff_1d(m, p, c, n));
  }
  sim::print_reports(std::cout, reports);
  maybe_write_csv("fig" + id, reports);
}

void run_2d_panel(const std::string& id, const machine::MachineModel& m, int p, int n,
                  int c_max) {
  print_figure_header(id, "2D-cutoff, " + m.name + ", " + std::to_string(p) + " cores, " +
                              std::to_string(n) + " particles, rc = l/4");
  std::vector<sim::RunReport> reports;
  for (int c = 1; c <= c_max; c *= 2) {
    if (p % c != 0) continue;
    const auto [qx, qy] = sim::near_square_factors(p / c);
    // The window must fit the team grid and c must fit inside the window
    // (the paper's c <= 2m constraint); at very large c the shrunken team
    // grid violates one or the other.
    const int mx = core::window_radius_teams(0.25, 1.0, qx);
    const int my = core::window_radius_teams(0.25, 1.0, qy);
    if (2 * mx + 1 > qx || 2 * my + 1 > qy) continue;
    if (c > (2 * mx + 1) * (2 * my + 1)) continue;
    reports.push_back(run_ca_cutoff_2d(m, p, c, n, qx, qy));
  }
  sim::print_reports(std::cout, reports);
  maybe_write_csv("fig" + id, reports);
}

}  // namespace

int main() {
  std::cout << "CA-N-Body — Figure 6 reproduction: cutoff simulations, time vs replication\n";
  auto intrepid_p2p = machine::intrepid(/*use_hw_tree=*/false, /*torus_bcast_shifts=*/false);

  run_1d_panel("6a", machine::hopper(), 24576, 196608, 64);
  run_2d_panel("6b", machine::hopper(), 24576, 196608, 128);
  run_1d_panel("6c", intrepid_p2p, 32768, 262144, 64);
  run_2d_panel("6d", intrepid_p2p, 32768, 262144, 64);

  std::cout << "\nExpected shape (paper): communication falls for small c, then the reduce\n"
               "phase grows at large c (collectives fail to scale); shift costs stagnate\n"
               "due to boundary load imbalance; re-assignment adds a small constant cost;\n"
               "the largest c never wins.\n";
  return 0;
}
