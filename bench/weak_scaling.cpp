// Weak scaling (extension): the paper evaluates strong scaling (Figs 3, 7);
// here we hold n/p fixed and grow the machine. For all-pairs N-body, work
// per rank grows linearly with p at fixed n/p (each particle meets all n),
// so classic weak-scaling efficiency is not flat even for a perfect
// algorithm; we therefore report time-per-step against the ideal-compute
// line and the communication share, which the CA algorithm keeps bounded.
#include <iostream>

#include "bench/common.hpp"
#include "bounds/lower_bounds.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

}  // namespace

int main() {
  std::cout << "CA-N-Body — weak scaling (n/p = 8 particles per core, Hopper model)\n\n";
  const int per_rank = 8;

  Table t({{"p", 8},
           {"n", 9},
           {"c", 5},
           {"total(s)", 11, 5},
           {"ideal(s)", 11, 5},
           {"comm(s)", 11, 5},
           {"comm %", 8, 1}});
  for (int p : {1536, 6144, 24576}) {
    const auto n = static_cast<std::uint64_t>(p) * per_rank;
    for (int c : {1, 4, 16}) {
      if (!vmpi::valid_all_pairs_replication(p, c)) continue;
      const auto rep = run_ca_all_pairs(machine::hopper(), p, c, n, 1);
      const double ideal =
          bounds::model_serial_seconds(machine::hopper(), static_cast<double>(n)) / p;
      t.add_row({static_cast<long long>(p), static_cast<long long>(n),
                 static_cast<long long>(c), rep.total(), ideal, rep.communication(),
                 100.0 * rep.communication() / rep.total()});
    }
  }
  t.print(std::cout);

  std::cout << "\n" << banner("Cutoff weak scaling (constant work per rank)") << "\n\n";
  // Weak scaling holds physical density constant: the box grows with p,
  // so the cutoff spans a FIXED number of rank-widths while its box
  // fraction shrinks. Per-rank work is then constant and time-per-step
  // should stay flat for a scalable algorithm.
  Table t2({{"p", 8}, {"n", 9}, {"c", 5}, {"total(s)", 11, 5}, {"comm(s)", 11, 5}});
  for (int p : {1024, 4096, 16384}) {
    const int n = p * per_rank;
    for (int c : {1, 4, 16}) {
      if (p % c != 0) continue;
      // Fixed physical cutoff: rc spans 128 rank-widths at every machine
      // size, so the window is m = 128/c teams and per-rank work is
      // constant across both p and c.
      const double rc_fraction = 128.0 / p;
      const auto rep = run_ca_cutoff_1d(machine::hopper(), p, c, n, rc_fraction);
      t2.add_row({static_cast<long long>(p), static_cast<long long>(n),
                  static_cast<long long>(c), rep.total(), rep.communication()});
    }
  }
  t2.print(std::cout);
  std::cout << "\nReading: all-pairs weak scaling is inherently O(n^2/p) = O(p) per step;\n"
               "the CA algorithm keeps the communication share small as p grows. Under\n"
               "a cutoff the per-rank work is constant and the best-c total stays\n"
               "nearly flat — weak-scalable in the classic sense.\n";
  return 0;
}
