// Figure 7: "Strong scaling performance of 1D and 2D simulations with
// cutoff radius."
//
//   7a: 1D-cutoff, Hopper,   n = 196,608, p = 96 .. 24,576
//   7b: 2D-cutoff, Hopper,   n = 196,608, p = 96 .. 24,576
//   7c: 1D-cutoff, Intrepid, n = 262,144, p = 2,048 .. 32,768
//   7d: 2D-cutoff, Intrepid, n = 262,144, p = 2,048 .. 32,768
//
// Efficiency is T(1 core) / (p * T(p)) with T(1) the modeled serial time
// for n*k cutoff interactions. Expected shapes (paper Section IV-D2): the
// largest replication factor never gives the best results; small machines
// show sub-ideal efficiency for large c (load imbalance); the best c gives
// roughly double the efficiency of c=1 at the largest sizes.
#include <iostream>

#include "bench/common.hpp"
#include "bounds/lower_bounds.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

double serial_time_cutoff(const machine::MachineModel& m, double n, int dims) {
  // k interactions per particle at rc = l/4: half the box in 1D, a disc of
  // area pi rc^2 in 2D.
  const double frac = dims == 1 ? 0.5 : 3.14159265358979 * 0.25 * 0.25;
  return bounds::model_serial_seconds(m, n, frac * n);
}

void run_panel(const std::string& id, const machine::MachineModel& m, int n, int dims,
               const std::vector<int>& sizes) {
  print_figure_header(id, std::to_string(dims) + "D-cutoff, " + m.name + ", " +
                              std::to_string(n) +
                              " particles — relative efficiency vs one core");
  const std::vector<int> cs{1, 4, 16, 64};
  std::vector<ColumnSpec> cols{{"p", 8}};
  for (int c : cs) cols.push_back({"c=" + std::to_string(c), 9, 3});
  cols.push_back({"best", 7});
  Table table(cols);
  const double t1 = serial_time_cutoff(m, n, dims);

  for (int p : sizes) {
    std::vector<Cell> row{static_cast<long long>(p)};
    double best_eff = 0;
    int best_c = 0;
    for (int c : cs) {
      if (p % c != 0) {
        row.push_back(std::string("-"));
        continue;
      }
      const int q = p / c;
      std::optional<sim::RunReport> rep;
      if (dims == 1) {
        const int mteams = core::window_radius_teams(0.25, 1.0, q);
        if (2 * mteams + 1 > q || !vmpi::valid_cutoff_replication(p, c, mteams)) {
          row.push_back(std::string("-"));
          continue;
        }
        rep = run_ca_cutoff_1d(m, p, c, n);
      } else {
        const auto [qx, qy] = sim::near_square_factors(q);
        const int mx = core::window_radius_teams(0.25, 1.0, qx);
        const int my = core::window_radius_teams(0.25, 1.0, qy);
        if (2 * mx + 1 > qx || 2 * my + 1 > qy || c > (2 * mx + 1) * (2 * my + 1)) {
          row.push_back(std::string("-"));
          continue;
        }
        rep = run_ca_cutoff_2d(m, p, c, n, qx, qy);
      }
      const double eff = t1 / (static_cast<double>(p) * rep->wall);
      row.push_back(eff);
      if (eff > best_eff) {
        best_eff = eff;
        best_c = c;
      }
    }
    row.push_back(std::string("c=" + std::to_string(best_c)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "CA-N-Body — Figure 7 reproduction: cutoff strong scaling\n";
  auto intrepid_p2p = machine::intrepid(false, /*torus_bcast_shifts=*/false);
  run_panel("7a", machine::hopper(), 196608, 1, {96, 384, 1536, 6144, 24576});
  run_panel("7b", machine::hopper(), 196608, 2, {96, 384, 1536, 6144, 24576});
  run_panel("7c", intrepid_p2p, 262144, 1, {2048, 8192, 32768});
  run_panel("7d", intrepid_p2p, 262144, 2, {2048, 8192, 32768});
  std::cout << "\nExpected shape (paper): c=1 efficiency collapses at scale; the best\n"
               "replication factor roughly doubles efficiency at the largest machines;\n"
               "the largest c never wins; cutoff runs are less efficient than all-pairs\n"
               "due to boundary load imbalance.\n";
  return 0;
}
