// End-to-end step throughput bench: host steps/sec through the Simulation
// facade for the configurations the figure drivers actually exercise —
// cutoff + cell-window schedules with the scalar and batched engines, plus
// an all-pairs case for context. This measures HOST wall time of the whole
// timestep (broadcast/skew/shift staging, force sweeps, reduce, integrate,
// re-assign); the virtual-time ledger is layout- and engine-invariant by
// construction and is *not* what this bench reports.
//
//   ./bench/step_bench --out=BENCH_step.json --min-ms=400 --repeats=3
//
// Emitted JSON records steps/sec per (method, n, p, c, engine, threads) so
// the perf trajectory of the resident-layout work is a file in the repo,
// not a claim from memory.
//
// --series-out=FILE additionally runs the headline case once more with the
// per-step flight recorder attached (obs/step_series.hpp) and writes its
// JSON — a per-step wall/pairs/steals profile of the bench workload. This
// instrumented pass is separate from the timed windows above, so attaching
// the recorder cannot perturb the recorded steps/sec.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "machine/presets.hpp"
#include "obs/export.hpp"
#include "obs/step_series.hpp"
#include "particles/init.hpp"
#include "sim/simulation.hpp"
#include "support/assert.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "vmpi/socket_transport.hpp"
#include "vmpi/transport.hpp"

namespace {

using namespace canb;

volatile double g_sink = 0.0;  ///< defeats dead-code elimination across runs

struct Case {
  sim::Method method = sim::Method::CaCutoff;
  int n = 4096;
  int p = 64;
  int c = 2;
  double cutoff = 0.1;
  particles::KernelEngine engine = particles::KernelEngine::Batched;
  int threads = 1;
  /// Host data plane (vmpi/buffer_pool.hpp): pooled lane-subset copies vs
  /// the legacy full-copy host path. Virtual ledgers are identical; only
  /// host wall time moves.
  bool pooled = true;
  /// Initial particle distribution: "uniform", "plummer" (dense core),
  /// or "ring" (annulus). Clustered inputs skew the per-cell interaction
  /// histogram — the workload the stealing scheduler exists for.
  std::string dist = "uniform";
  /// Task scheduler for the attached pool; trajectories are bitwise
  /// identical across modes, only host wall time moves.
  SchedMode sched = SchedMode::kStatic;
  int steal_grain = 1;
};

struct Result {
  Case cfg;
  double steps_per_sec = 0.0;
};

const char* engine_label(particles::KernelEngine e) {
  return e == particles::KernelEngine::Batched ? "batched" : "scalar";
}

/// Builds a fresh Simulation for the case (identical initial state every
/// time: the workload seed is fixed).
sim::Simulation<particles::InverseSquareRepulsion> make_sim(
    const Case& cs, int series_capacity = 0,
    std::shared_ptr<vmpi::Transport> transport = nullptr,
    vmpi::ExecMode exec = vmpi::ExecMode::OwnerComputes) {
  sim::Simulation<particles::InverseSquareRepulsion>::Config cfg;
  cfg.method = cs.method;
  cfg.p = cs.p;
  cfg.c = cs.c;
  cfg.machine = machine::hopper();
  cfg.kernel = particles::InverseSquareRepulsion{1e-4, 1e-2};
  cfg.cutoff = cs.cutoff;
  cfg.dt = 1e-4;
  cfg.engine = cs.engine;
  cfg.pooled_data_plane = cs.pooled;
  cfg.sched = cs.sched;
  cfg.steal_grain = cs.steal_grain;
  cfg.transport = std::move(transport);
  cfg.exec = exec;
  if (series_capacity > 0) {
    cfg.obs = obs::ObsLevel::Metrics;
    cfg.series_capacity = series_capacity;
  }
  if (cs.dist == "plummer")
    return {cfg, particles::init_plummer(cs.n, cfg.box, 0.1, 2013, 0.01)};
  if (cs.dist == "ring")
    return {cfg, particles::init_ring(cs.n, cfg.box, 0.35, 0.05, 2013, 0.01)};
  return {cfg, particles::init_uniform(cs.n, cfg.box, 2013, 0.01)};
}

/// The flight-recorder pass: one fresh run of `cs` with the step series
/// attached, written as flight-recorder JSON. Separate from the timed
/// windows so instrumentation cannot perturb the steps/sec numbers.
void record_series(const Case& cs, const std::string& path, int steps) {
  auto simulation = make_sim(cs, steps);
  if (cs.threads > 1) simulation.set_host_pool(std::make_shared<ThreadPool>(cs.threads));
  simulation.run(steps);
  simulation.finalize_telemetry();
  simulation.manifest()
      .set("bench", "step_throughput")
      .set("n", cs.n)
      .set("steps", steps)
      .set("dist", cs.dist)
      .set("threads", cs.threads);
  std::ofstream out(path);
  CANB_REQUIRE(out.good(), "cannot open --series-out file: " + path);
  obs::write_step_series(out, *simulation.step_series(), simulation.manifest());
  g_sink = g_sink + simulation.gather()[0].px;
}

/// Best steps/sec over `repeats` timed windows of at least `min_ms` each
/// (after a warmup step that faults pages and primes scratch buffers).
double measure_steps_per_sec(const Case& cs, double min_ms, int repeats) {
  auto simulation = make_sim(cs);
  if (cs.threads > 1) simulation.set_host_pool(std::make_shared<ThreadPool>(cs.threads));
  simulation.step();  // warmup
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    long steps = 0;
    double elapsed = 0.0;
    do {
      simulation.step();
      ++steps;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    } while (elapsed * 1e3 < min_ms);
    best = std::max(best, static_cast<double>(steps) / elapsed);
  }
  g_sink = g_sink + simulation.gather()[0].px;
  return best;
}

struct SocketResult {
  Case cfg;
  int groups = 0;
  vmpi::ExecMode exec = vmpi::ExecMode::OwnerComputes;
  int steps = 0;
  double steps_per_sec = 0.0;
};

/// The socket arm: forks `groups` OS processes over a Unix-socket mesh and
/// times `steps` fixed steps on the primary, barrier-aligned on both ends
/// so the window covers the whole mesh's work. Runs lockstep and
/// owner-computes back-to-back from the same binary on the same host, so
/// the recorded ratio (owner-computes skips the non-owned ~ (G-1)/G of the
/// force sweeps) is an honest same-host comparison. MUST run before any
/// ThreadPool exists — fork precedes threads — which is why main() does
/// the socket cases first, single-threaded. Children exit here; only the
/// primary returns.
double measure_socket_steps_per_sec(const Case& cs, int groups, vmpi::ExecMode exec,
                                    int steps) {
  const std::string dir = vmpi::make_rendezvous_dir();
  vmpi::ProcessGroup pg(groups);
  double sps = 0.0;
  {
    vmpi::SocketConfig sc;
    sc.ranks = cs.p;
    sc.groups = groups;
    sc.group = pg.group();
    sc.dir = dir;
    auto transport = std::make_shared<vmpi::SocketTransport>(sc);
    auto simulation = make_sim(cs, 0, transport, exec);
    simulation.step();  // warmup: faults pages, primes scratch + mailboxes
    transport->barrier();
    const auto start = std::chrono::steady_clock::now();
    simulation.run(steps);
    transport->barrier();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    sps = static_cast<double>(steps) / elapsed;
    // gather() is symmetric under owner-computes: every group participates.
    g_sink = g_sink + simulation.gather()[0].px;
    // Scope exit drops the endpoint (flush + close-barrier) with every
    // process still alive.
  }
  if (!pg.primary()) std::_Exit(0);
  CANB_REQUIRE(pg.wait_children() == 0, "a forked bench group failed");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return sps;
}

void write_json(const std::string& path, const std::vector<Result>& rs,
                const std::vector<SocketResult>& socket_rs, double min_ms, int repeats) {
  obs::RunManifest manifest;
  manifest.machine = "host";
  manifest
      .set("note",
           "host wall time per full timestep via sim::Simulation; virtual-time ledgers are "
           "engine- and layout-invariant")
      .set("virtual_machine", "hopper")
      .set("min_ms", min_ms)
      .set("repeats", repeats);
  obs::BenchJsonWriter out(path, "step_throughput", "steps_per_sec", manifest);
  for (const auto& r : rs) {
    out.row([&](obs::JsonWriter& w) {
      w.kv("method", sim::method_name(r.cfg.method))
          .kv("n", r.cfg.n)
          .kv("p", r.cfg.p)
          .kv("c", r.cfg.c)
          .kv("cutoff", r.cfg.cutoff)
          .kv("engine", engine_label(r.cfg.engine))
          .kv("threads", r.cfg.threads)
          .kv("data_plane", r.cfg.pooled ? "pooled" : "legacy")
          .kv("dist", r.cfg.dist)
          .kv("sched", to_string(r.cfg.sched))
          .kv("steps_per_sec", r.steps_per_sec);
    });
  }
  // Socket-mesh rows: lockstep vs owner-computes wall clock, back to back.
  for (const auto& r : socket_rs) {
    out.row([&](obs::JsonWriter& w) {
      w.kv("method", sim::method_name(r.cfg.method))
          .kv("n", r.cfg.n)
          .kv("p", r.cfg.p)
          .kv("c", r.cfg.c)
          .kv("cutoff", r.cfg.cutoff)
          .kv("engine", engine_label(r.cfg.engine))
          .kv("threads", r.cfg.threads)
          .kv("transport", "socket")
          .kv("groups", r.groups)
          .kv("exec", vmpi::exec_mode_name(r.exec))
          .kv("steps", r.steps)
          .kv("steps_per_sec", r.steps_per_sec);
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"out", "min-ms", "repeats", "series-out", "series-steps", "socket-steps"});
  const std::string out_path = args.get("out", "BENCH_step.json");
  const double min_ms = args.get_double("min-ms", 400.0);
  const int repeats = static_cast<int>(args.get_int("repeats", 3));
  const std::string series_out = args.get("series-out", "");
  const int series_steps = static_cast<int>(args.get_int("series-steps", 64));
  const int socket_steps = static_cast<int>(args.get_int("socket-steps", 24));

  // Socket-mesh arm FIRST: ProcessGroup forks, and fork must precede any
  // thread this process ever spawns (ThreadPool workers, transport
  // readers are joined before each case ends). Lockstep and
  // owner-computes run back to back per group count so BENCH_step.json
  // records the wall-clock ratio of dividing the sweeps vs replicating
  // them. --socket-steps=0 skips the arm.
  std::vector<SocketResult> socket_results;
  if (socket_steps > 0) {
    const Case socket_case{sim::Method::CaCutoff, 4096, 64, 2, 0.1,
                           particles::KernelEngine::Batched, 1};
    for (const int groups : {2, 4}) {
      for (const auto exec : {vmpi::ExecMode::Lockstep, vmpi::ExecMode::OwnerComputes}) {
        SocketResult r{socket_case, groups, exec, socket_steps,
                       measure_socket_steps_per_sec(socket_case, groups, exec, socket_steps)};
        socket_results.push_back(r);
        std::printf("socket g=%d %-14s %.2f steps/s\n", groups, vmpi::exec_mode_name(exec),
                    r.steps_per_sec);
      }
    }
  }

  std::vector<Case> cases;
  for (const auto engine : {particles::KernelEngine::Scalar, particles::KernelEngine::Batched}) {
    // The headline configuration: cutoff schedule, ~128 particles per team —
    // the small-block regime the paper's weak-scaling figures run in, where
    // per-sweep repacking overhead is proportionally largest.
    cases.push_back({sim::Method::CaCutoff, 4096, 64, 2, 0.1, engine, 1});
    // Smaller blocks (~32/team): repack overhead dominates the k^2 sweep.
    cases.push_back({sim::Method::CaCutoff, 2048, 128, 2, 0.12, engine, 1});
    // All-pairs for context (larger blocks, sweep-dominated).
    cases.push_back({sim::Method::CaAllPairs, 2048, 16, 2, 0.0, engine, 1});
    // Threaded cutoff: the configuration the examples/figure sweeps use.
    cases.push_back({sim::Method::CaCutoff, 4096, 64, 2, 0.1, engine, 4});
  }
  // Broadcast/reduce-dominated: deep replication (c=8 -> 7 replica copies
  // per team per step) over small blocks, where the per-step host time is
  // mostly data movement, not force arithmetic. Run with both host data
  // planes back-to-back so the pooled/legacy ratio is recorded in the same
  // JSON from the same process on the same host.
  for (const int n : {128, 512}) {
    for (const bool pooled : {false, true}) {
      cases.push_back(
          {sim::Method::CaAllPairs, n, 64, 8, 0.0, particles::KernelEngine::Batched, 1, pooled});
    }
  }
  // Clustered arm: Plummer core / ring annulus over the cutoff schedule,
  // static vs stealing back-to-back from the same process, so the recorded
  // ratio is an honest same-host comparison. Clustered inputs make per-cell
  // interaction counts wildly non-uniform — the static partition load-
  // imbalances and stealing rebalances (on multi-core hosts; a 1-core host
  // records the scheduling overhead honestly instead).
  for (const std::string& dist : {std::string("plummer"), std::string("ring")}) {
    for (const int threads : {4, 8}) {
      for (const SchedMode sched : {SchedMode::kStatic, SchedMode::kStealing}) {
        cases.push_back({sim::Method::CaCutoff, 4096, 64, 2, 0.1,
                         particles::KernelEngine::Batched, threads, true, dist, sched, 2});
      }
    }
  }

  std::vector<Result> results;
  std::cout << "method        n      p    c  engine   thr  plane   dist     sched    steps/s\n";
  for (const auto& cs : cases) {
    Result r{cs, measure_steps_per_sec(cs, min_ms, repeats)};
    results.push_back(r);
    std::printf("%-13s %-6d %-4d %-2d %-8s %-4d %-7s %-8s %-8s %.2f\n",
                sim::method_name(cs.method), cs.n, cs.p, cs.c, engine_label(cs.engine),
                cs.threads, cs.pooled ? "pooled" : "legacy", cs.dist.c_str(),
                to_string(cs.sched), r.steps_per_sec);
  }
  write_json(out_path, results, socket_results, min_ms, repeats);
  std::cout << "wrote " << out_path << "\n";

  if (!series_out.empty()) {
    // Flight-record the headline case (first in `cases`) after the timed
    // windows are done and written.
    record_series(cases.front(), series_out, series_steps);
    std::cout << "wrote " << series_out << " (" << series_steps << "-step flight record)\n";
  }
  return 0;
}
