// Figure 2: "The effect of the replication factor c on execution time for
// small and large problems on Hopper and Intrepid."
//
// Four panels, each a sweep over c at fixed machine size and problem size,
// with the per-phase breakdown the paper plots as stacked bars:
//   2a: Hopper,   p =  6,144, n =  24,576   (monotone decrease expected)
//   2b: Hopper,   p = 24,576, n = 196,608   (best at c = 16)
//   2c: Intrepid, p =  8,192, n =  32,768   (plus the c=1 "tree" bar)
//   2d: Intrepid, p = 32,768, n = 262,144   (plus the c=1 "tree" bar)
//
// Also prints the paper's two headline claims computed from the model:
// the best-c speedup over c=1 (Section V: "over 11.8x"), and the
// communication-time reduction on Intrepid's torus (Section III-C1: 99.5%).
#include <iomanip>
#include <iostream>

#include "bench/common.hpp"
#include "decomp/particle_decomposition.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

sim::RunReport run_naive_allgather(const machine::MachineModel& m, int p, std::uint64_t n) {
  core::PhantomPolicy policy;
  std::vector<core::PhantomBlock> blocks = even_counts(n, p);
  decomp::ParticleDecompositionAllGather<core::PhantomPolicy> engine({p, m}, policy,
                                                                     std::move(blocks));
  engine.run(kStepsPerRun);
  return sim::summarize(engine.comm(), kStepsPerRun, "c=1(tree)", 1);
}

struct PanelResult {
  sim::RunReport c1;
  sim::RunReport best;
};

PanelResult run_panel(const std::string& id, const machine::MachineModel& m, int p,
                      std::uint64_t n, int c_max, bool with_tree_bar) {
  print_figure_header(id, m.name + ", " + std::to_string(p) + " cores, " + std::to_string(n) +
                              " particles (time per timestep, critical path)");
  std::vector<sim::RunReport> reports;
  if (with_tree_bar) {
    // The hardware-assisted naive baseline: one whole-partition all-gather
    // per step over the BG/P collective network.
    reports.push_back(run_naive_allgather(machine::intrepid(/*use_hw_tree=*/true), p, n));
  }
  std::optional<sim::RunReport> c1;
  std::optional<sim::RunReport> best;
  for (int c : valid_all_pairs_cs(p, c_max)) {
    auto rep = run_ca_all_pairs(m, p, c, n);
    if (c == 1) {
      rep.label = with_tree_bar ? "c=1(no-tree)" : "c=1";
      c1 = rep;
    }
    if (!best || rep.total() < best->total()) best = rep;
    reports.push_back(std::move(rep));
  }
  sim::print_reports(std::cout, reports);
  maybe_write_csv("fig" + id, reports);
  std::cout << "\n  best: " << best->label << " at " << format_seconds(best->total())
            << "/step;  c=1: " << format_seconds(c1->total()) << "/step;  speedup "
            << std::fixed << std::setprecision(2) << c1->total() / best->total() << "x;  comm "
            << format_seconds(c1->communication()) << " -> "
            << format_seconds(best->communication()) << " ("
            << 100.0 * (1.0 - best->communication() / c1->communication())
            << "% reduction)\n";
  return {*c1, *best};
}

}  // namespace

int main() {
  std::cout << "CA-N-Body — Figure 2 reproduction: execution time vs replication factor\n";

  run_panel("2a", machine::hopper(), 6144, 24576, 32, false);
  const auto p2b = run_panel("2b", machine::hopper(), 24576, 196608, 64, false);
  const auto p2c = run_panel("2c", machine::intrepid(), 8192, 32768, 64, true);
  const auto p2d = run_panel("2d", machine::intrepid(), 32768, 262144, 128, true);

  std::cout << "\n" << canb::banner("Headline claims") << "\n";
  std::cout << "  paper Section V: 'a speedup of over 11.8x from communication avoidance'\n"
            << "    model, Fig 2c (Intrepid 8K cores): " << std::fixed << std::setprecision(1)
            << p2c.c1.total() / p2c.best.total() << "x total-time speedup (best c vs c=1)\n";
  std::cout << "  paper Section III-C1: '99.5% reduction in communication time' (torus runs)\n"
            << "    model, Fig 2d (Intrepid 32K cores): " << std::setprecision(2)
            << 100.0 * (1.0 - p2d.best.communication() / p2d.c1.communication())
            << "% communication reduction (best c vs c=1 no-tree)\n";
  std::cout << "  paper Fig 2b: best performance at c=16 on Hopper 24K cores\n"
            << "    model: best at " << p2b.best.label << "\n";
  return 0;
}
