// Figure 3: "Strong scaling performance on Hopper and Intrepid. For the
// given problem sizes, our algorithm achieves nearly perfect strong scaling
// with the appropriate choice of replication factor."
//
//   3a: Hopper,   n = 196,608, p = 1,536 .. 24,576
//   3b: Intrepid, n = 262,144, p = 2,048 .. 32,768
//
// Efficiency is T(1 core) / (p * T(p)), with T(1) the modeled single-core
// time (pure computation), exactly the paper's normalization. A dash marks
// (p, c) combinations where c is invalid (c must divide p/c).
#include <iomanip>
#include <iostream>

#include "bench/common.hpp"
#include "bounds/lower_bounds.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

void run_panel(const std::string& id, const machine::MachineModel& m, std::uint64_t n,
               const std::vector<int>& sizes, const std::vector<int>& cs) {
  print_figure_header(id, m.name + ", " + std::to_string(n) +
                              " particles — relative efficiency vs one core");
  const double t_serial = bounds::model_serial_seconds(m, static_cast<double>(n));

  std::vector<ColumnSpec> cols{{"p", 8}};
  for (int c : cs) cols.push_back({"c=" + std::to_string(c), 9, 3});
  cols.push_back({"best", 7});
  Table table(cols);

  for (int p : sizes) {
    std::vector<Cell> row;
    row.reserve(cols.size());
    row.emplace_back(static_cast<long long>(p));
    double best_eff = 0.0;
    int best_c = 0;
    for (int c : cs) {
      if (!vmpi::valid_all_pairs_replication(p, c)) {
        row.emplace_back(std::string("-"));
        continue;
      }
      const auto rep = run_ca_all_pairs(m, p, c, n);
      const double eff = t_serial / (static_cast<double>(p) * rep.total());
      row.emplace_back(eff);
      if (eff > best_eff) {
        best_eff = eff;
        best_c = c;
      }
    }
    row.emplace_back("c=" + std::to_string(best_c));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "CA-N-Body — Figure 3 reproduction: strong scaling efficiency\n";
  run_panel("3a", machine::hopper(), 196608, {1536, 3072, 6144, 12288, 24576},
            {1, 2, 4, 8, 16, 32, 64});
  run_panel("3b", machine::intrepid(), 262144, {2048, 4096, 8192, 16384, 32768},
            {1, 2, 4, 8, 16, 32, 64});
  std::cout << "\nExpected shape (paper): efficiency near 1.0 for the best c at every size;\n"
               "c=1 degrades steeply with machine size; larger c tolerates scale better\n"
               "until collective costs bite (largest c is never best at the top sizes).\n";
  return 0;
}
