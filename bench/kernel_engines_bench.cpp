// Kernel-engine throughput bench: pairs/sec for every force kernel at
// n in {64, 256, 1024, 4096} across the host sweep arms, emitted as JSON so
// the perf trajectory is recorded (BENCH_kernels.json at the repo root),
// not asserted from memory. This measures HOST time — the quantity the
// batched engine is allowed to change — never virtual machine time.
//
// Arms per (kernel, n):
//   scalar          the reference AoS double-loop
//   batched_full    batched engine, full N^2 sweep (the pre-N3L path)
//   batched         batched engine, N3L half-sweep (the default)
//   batched_<simd>  half-sweep pinned to one SIMD backend (lane-pipeline
//                   kernels only; exact paths are bitwise identical, so
//                   their checksums must agree)
//   batched_fast    half-sweep + the opt-in rsqrt fast path (inverse-cube
//                   kernels only; checksum may differ in the last bits)
//
// Every arm reports a force checksum (sum of |fx| + |fy| after one sweep,
// %.17g): equal checksums across arms demonstrate the bitwise contract on
// the exact paths; the fast arm documents how far it strays.
//
//   ./bench/kernel_engines_bench --out=BENCH_kernels.json --min-ms=150
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "particles/batched_engine.hpp"
#include "particles/cell_list.hpp"
#include "particles/init.hpp"
#include "particles/kernels.hpp"
#include "particles/simd/simd.hpp"
#include "support/cli.hpp"

namespace {

using namespace canb;
using particles::Box;
using particles::KernelEngine;
namespace simd = particles::simd;

volatile double g_sink = 0.0;  ///< defeats dead-code elimination of the sweeps

struct Arm {
  std::string name;
  double pairs_per_sec = 0.0;
  double checksum = 0.0;  ///< sum |fx| + |fy| after one sweep from rest
};

struct Measurement {
  std::string kernel;
  int n = 0;
  std::vector<Arm> arms;

  const Arm* find(const std::string& name) const {
    for (const auto& a : arms)
      if (a.name == name) return &a;
    return nullptr;
  }
  double speedup() const {
    const Arm* s = find("scalar");
    const Arm* b = find("batched");
    return (s != nullptr && b != nullptr && s->pairs_per_sec > 0.0)
               ? b->pairs_per_sec / s->pairs_per_sec
               : 0.0;
  }
};

/// One sweep configuration under measurement.
struct ArmConfig {
  KernelEngine engine = KernelEngine::Batched;
  particles::SweepTuning tuning{};
  simd::Backend backend = simd::max_supported();
  bool fast_rsqrt = false;
};

/// Runs the sweep repeatedly until `min_ms` of wall time accumulates (after
/// one warmup iteration) and returns the best pairs/sec over `repeats`
/// timed windows — the google-benchmark convention, hand-rolled so this
/// driver can emit its own JSON.
template <class K>
Arm measure_arm(std::string name, const K& kernel, int n, const ArmConfig& arm, double min_ms,
                int repeats) {
  const Box box = Box::reflective_2d(1.0);
  auto ps = particles::init_uniform(n, box, 1);
  const auto pairs_per_iter = static_cast<double>(n) * static_cast<double>(n - 1);
  simd::set_backend(arm.backend);
  simd::set_fast_rsqrt(arm.fast_rsqrt);
  particles::SweepScratch scratch;
  const auto run_once = [&] {
    particles::clear_forces(ps);
    const auto count = particles::accumulate_forces_with(
        arm.engine, std::span<particles::Particle>(ps), std::span<const particles::Particle>(ps),
        box, kernel, 0.0, &scratch, arm.tuning);
    g_sink = g_sink + static_cast<double>(count.within_cutoff) + static_cast<double>(ps[0].fx);
  };
  run_once();  // warmup: faults pages, primes caches and the SoA scratch

  Arm out;
  out.name = std::move(name);
  for (const auto& p : ps) out.checksum += std::fabs(static_cast<double>(p.fx)) +
                                           std::fabs(static_cast<double>(p.fy));
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    long iters = 0;
    double elapsed = 0.0;
    do {
      run_once();
      ++iters;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    } while (elapsed * 1e3 < min_ms);
    out.pairs_per_sec =
        std::max(out.pairs_per_sec, static_cast<double>(iters) * pairs_per_iter / elapsed);
  }
  simd::set_fast_rsqrt(false);
  return out;
}

/// Cell-list cutoff sweep over a resident SoaBlock — the path the serial
/// reference and the spatial baselines run under a cutoff. Pairs/sec counts
/// applied (in-cutoff) pair interactions; the scalar and batched paths
/// apply identical pair sets by construction.
template <class K>
double measure_cell_list_pairs_per_sec(const K& kernel, int n, double cutoff,
                                       KernelEngine engine, double min_ms, int repeats) {
  const Box box = Box::reflective_2d(1.0);
  particles::SoaBlock ps(particles::init_uniform(n, box, 1));
  particles::SweepScratch scratch;
  double pairs_per_iter = 0.0;
  const auto run_once = [&] {
    ps.clear_forces();
    const auto applied =
        particles::cell_list_forces(ps, box, kernel, cutoff, engine, &scratch);
    pairs_per_iter = static_cast<double>(applied);
    g_sink = g_sink + static_cast<double>(applied) + ps.fx[0];
  };
  run_once();  // warmup: faults pages, primes caches and the SoA scratch
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    long iters = 0;
    double elapsed = 0.0;
    do {
      run_once();
      ++iters;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    } while (elapsed * 1e3 < min_ms);
    best = std::max(best, static_cast<double>(iters) * pairs_per_iter / elapsed);
  }
  return best;
}

template <class K>
Measurement measure_cell_list(const std::string& name, const K& kernel, int n, double cutoff,
                              double min_ms, int repeats) {
  Measurement m;
  m.kernel = name;
  m.n = n;
  m.arms.push_back({"scalar",
                    measure_cell_list_pairs_per_sec(kernel, n, cutoff, KernelEngine::Scalar,
                                                    min_ms, repeats),
                    0.0});
  m.arms.push_back({"batched",
                    measure_cell_list_pairs_per_sec(kernel, n, cutoff, KernelEngine::Batched,
                                                    min_ms, repeats),
                    0.0});
  return m;
}

/// `lanes`: the kernel has a SIMD lane pipeline, so pin each backend in
/// turn. `fast`: the kernel routes through inv_cube_lanes, so the opt-in
/// rsqrt arm is meaningful.
template <class K>
Measurement measure(const std::string& name, const K& kernel, int n, double min_ms, int repeats,
                    bool lanes, bool fast) {
  Measurement m;
  m.kernel = name;
  m.n = n;
  {
    ArmConfig scalar;
    scalar.engine = KernelEngine::Scalar;
    m.arms.push_back(measure_arm("scalar", kernel, n, scalar, min_ms, repeats));
  }
  ArmConfig batched;  // defaults: widest backend, exact arithmetic
  batched.tuning.half_sweep = false;
  m.arms.push_back(measure_arm("batched_full", kernel, n, batched, min_ms, repeats));
  batched.tuning.half_sweep = true;
  m.arms.push_back(measure_arm("batched", kernel, n, batched, min_ms, repeats));
  if (lanes) {
    for (int b = 0; b <= static_cast<int>(simd::max_supported()); ++b) {
      ArmConfig pinned = batched;
      pinned.backend = static_cast<simd::Backend>(b);
      m.arms.push_back(measure_arm(std::string("batched_") + simd::backend_name(pinned.backend),
                                   kernel, n, pinned, min_ms, repeats));
    }
  }
  if (fast) {
    ArmConfig fastarm = batched;
    fastarm.fast_rsqrt = true;
    m.arms.push_back(measure_arm("batched_fast", kernel, n, fastarm, min_ms, repeats));
  }
  return m;
}

void write_json(const std::string& path, const std::vector<Measurement>& ms, double min_ms,
                int repeats) {
  obs::RunManifest manifest;
  manifest.machine = "host";
  manifest.set("min_ms", min_ms)
      .set("repeats", repeats)
      .set("simd_max", simd::backend_name(simd::max_supported()));
  obs::BenchJsonWriter out(path, "kernel_engines", "pairs_per_sec", manifest);
  for (const auto& m : ms) {
    out.row([&](obs::JsonWriter& w) {
      w.kv("kernel", m.kernel).kv("n", m.n);
      for (const auto& a : m.arms) w.kv(a.name, a.pairs_per_sec);
      w.kv("speedup", m.speedup());
      char buf[40];
      for (const auto& a : m.arms) {
        std::snprintf(buf, sizeof buf, "%.17g", a.checksum);
        w.kv("checksum_" + a.name, std::string(buf));
      }
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"out", "min-ms", "repeats"});
  const std::string out_path = args.get("out", "BENCH_kernels.json");
  const double min_ms = args.get_double("min-ms", 150.0);
  const int repeats = static_cast<int>(args.get_int("repeats", 3));
  const simd::Backend saved_backend = simd::active();

  std::vector<Measurement> ms;
  for (const int n : {64, 256, 1024, 4096}) {
    ms.push_back(measure("InverseSquare", particles::InverseSquareRepulsion{1e-4, 1e-2}, n,
                         min_ms, repeats, /*lanes=*/true, /*fast=*/true));
    ms.push_back(measure("Gravity", particles::Gravity{1e-4, 1e-2}, n, min_ms, repeats,
                         /*lanes=*/true, /*fast=*/true));
    ms.push_back(measure("LennardJones", particles::LennardJones{1e-6, 0.05}, n, min_ms, repeats,
                         /*lanes=*/false, /*fast=*/false));
    ms.push_back(measure("Yukawa", particles::Yukawa{1e-3, 0.1, 1e-2}, n, min_ms, repeats,
                         /*lanes=*/true, /*fast=*/false));
    ms.push_back(measure("Morse", particles::Morse{1e-4, 8.0, 0.1}, n, min_ms, repeats,
                         /*lanes=*/true, /*fast=*/false));
    ms.push_back(measure("SoftSphere", particles::SoftSphere{5.0, 0.06}, n, min_ms, repeats,
                         /*lanes=*/false, /*fast=*/false));
  }
  simd::set_backend(saved_backend);
  // The cell-list cutoff sweep (resident SoaBlock, rc = 0.1): the gather-by-
  // index-list path every cutoff method's host loop runs, as opposed to the
  // whole-block sweeps above.
  for (const int n : {1024, 4096, 16384}) {
    ms.push_back(measure_cell_list("InverseSquareCellList",
                                   particles::InverseSquareRepulsion{1e-4, 1e-2}, n, 0.1,
                                   min_ms, repeats));
  }

  write_json(out_path, ms, min_ms, repeats);
  std::cout << "kernel            n      arm             pairs/sec     checksum\n";
  for (const auto& m : ms) {
    for (const auto& a : m.arms) {
      std::printf("%-17s %-6d %-15s %-13.4g %.17g\n", m.kernel.c_str(), m.n, a.name.c_str(),
                  a.pairs_per_sec, a.checksum);
    }
    if (m.find("batched") != nullptr && m.find("scalar") != nullptr)
      std::printf("%-17s %-6d batched/scalar speedup: %.2fx\n", m.kernel.c_str(), m.n,
                  m.speedup());
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
