// Kernel-engine throughput bench: Scalar vs Batched pairs/sec for every
// force kernel at n in {64, 256, 1024, 4096}, emitted as JSON so the perf
// trajectory is recorded (BENCH_kernels.json at the repo root), not
// asserted from memory. This measures HOST time — the quantity the batched
// engine is allowed to change — never virtual machine time.
//
//   ./bench/kernel_engines_bench --out=BENCH_kernels.json --min-ms=150
#include <chrono>
#include <cstdio>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "particles/batched_engine.hpp"
#include "particles/cell_list.hpp"
#include "particles/init.hpp"
#include "particles/kernels.hpp"
#include "support/cli.hpp"

namespace {

using namespace canb;
using particles::Box;
using particles::KernelEngine;

volatile double g_sink = 0.0;  ///< defeats dead-code elimination of the sweeps

struct Measurement {
  std::string kernel;
  int n = 0;
  double scalar_pairs_per_sec = 0.0;
  double batched_pairs_per_sec = 0.0;
  double speedup() const { return batched_pairs_per_sec / scalar_pairs_per_sec; }
};

/// Runs the sweep repeatedly until `min_ms` of wall time accumulates (after
/// one warmup iteration) and returns the best pairs/sec over `repeats`
/// timed windows — the google-benchmark convention, hand-rolled so this
/// driver can emit its own JSON.
template <class K>
double measure_pairs_per_sec(const K& kernel, int n, KernelEngine engine, double min_ms,
                             int repeats) {
  const Box box = Box::reflective_2d(1.0);
  auto ps = particles::init_uniform(n, box, 1);
  const auto pairs_per_iter = static_cast<double>(n) * static_cast<double>(n - 1);
  const auto run_once = [&] {
    particles::clear_forces(ps);
    const auto count = particles::accumulate_forces_with(
        engine, std::span<particles::Particle>(ps), std::span<const particles::Particle>(ps),
        box, kernel);
    g_sink = g_sink + static_cast<double>(count.within_cutoff) + static_cast<double>(ps[0].fx);
  };
  run_once();  // warmup: faults pages, primes caches and the SoA scratch
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    long iters = 0;
    double elapsed = 0.0;
    do {
      run_once();
      ++iters;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    } while (elapsed * 1e3 < min_ms);
    best = std::max(best, static_cast<double>(iters) * pairs_per_iter / elapsed);
  }
  return best;
}

/// Cell-list cutoff sweep over a resident SoaBlock — the path the serial
/// reference and the spatial baselines run under a cutoff. Pairs/sec counts
/// applied (in-cutoff) pair interactions; the scalar and batched paths
/// apply identical pair sets by construction.
template <class K>
double measure_cell_list_pairs_per_sec(const K& kernel, int n, double cutoff,
                                       KernelEngine engine, double min_ms, int repeats) {
  const Box box = Box::reflective_2d(1.0);
  particles::SoaBlock ps(particles::init_uniform(n, box, 1));
  particles::SweepScratch scratch;
  double pairs_per_iter = 0.0;
  const auto run_once = [&] {
    ps.clear_forces();
    const auto applied =
        particles::cell_list_forces(ps, box, kernel, cutoff, engine, &scratch);
    pairs_per_iter = static_cast<double>(applied);
    g_sink = g_sink + static_cast<double>(applied) + ps.fx[0];
  };
  run_once();  // warmup: faults pages, primes caches and the SoA scratch
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    long iters = 0;
    double elapsed = 0.0;
    do {
      run_once();
      ++iters;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    } while (elapsed * 1e3 < min_ms);
    best = std::max(best, static_cast<double>(iters) * pairs_per_iter / elapsed);
  }
  return best;
}

template <class K>
Measurement measure_cell_list(const std::string& name, const K& kernel, int n, double cutoff,
                              double min_ms, int repeats) {
  Measurement m;
  m.kernel = name;
  m.n = n;
  m.scalar_pairs_per_sec =
      measure_cell_list_pairs_per_sec(kernel, n, cutoff, KernelEngine::Scalar, min_ms, repeats);
  m.batched_pairs_per_sec =
      measure_cell_list_pairs_per_sec(kernel, n, cutoff, KernelEngine::Batched, min_ms, repeats);
  return m;
}

template <class K>
Measurement measure(const std::string& name, const K& kernel, int n, double min_ms,
                    int repeats) {
  Measurement m;
  m.kernel = name;
  m.n = n;
  m.scalar_pairs_per_sec = measure_pairs_per_sec(kernel, n, KernelEngine::Scalar, min_ms, repeats);
  m.batched_pairs_per_sec =
      measure_pairs_per_sec(kernel, n, KernelEngine::Batched, min_ms, repeats);
  return m;
}

void write_json(const std::string& path, const std::vector<Measurement>& ms, double min_ms,
                int repeats) {
  obs::RunManifest manifest;
  manifest.machine = "host";
  manifest.set("min_ms", min_ms).set("repeats", repeats);
  obs::BenchJsonWriter out(path, "kernel_engines", "pairs_per_sec", manifest);
  for (const auto& m : ms) {
    out.row([&](obs::JsonWriter& w) {
      w.kv("kernel", m.kernel)
          .kv("n", m.n)
          .kv("scalar", m.scalar_pairs_per_sec)
          .kv("batched", m.batched_pairs_per_sec)
          .kv("speedup", m.speedup());
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"out", "min-ms", "repeats"});
  const std::string out_path = args.get("out", "BENCH_kernels.json");
  const double min_ms = args.get_double("min-ms", 150.0);
  const int repeats = static_cast<int>(args.get_int("repeats", 3));

  std::vector<Measurement> ms;
  for (const int n : {64, 256, 1024, 4096}) {
    ms.push_back(measure("InverseSquare", particles::InverseSquareRepulsion{1e-4, 1e-2}, n,
                         min_ms, repeats));
    ms.push_back(measure("Gravity", particles::Gravity{1e-4, 1e-2}, n, min_ms, repeats));
    ms.push_back(measure("LennardJones", particles::LennardJones{1e-6, 0.05}, n, min_ms, repeats));
    ms.push_back(measure("Yukawa", particles::Yukawa{1e-3, 0.1, 1e-2}, n, min_ms, repeats));
    ms.push_back(measure("Morse", particles::Morse{1e-4, 8.0, 0.1}, n, min_ms, repeats));
    ms.push_back(measure("SoftSphere", particles::SoftSphere{5.0, 0.06}, n, min_ms, repeats));
  }
  // The cell-list cutoff sweep (resident SoaBlock, rc = 0.1): the gather-by-
  // index-list path every cutoff method's host loop runs, as opposed to the
  // whole-block sweeps above.
  for (const int n : {1024, 4096, 16384}) {
    ms.push_back(measure_cell_list("InverseSquareCellList",
                                   particles::InverseSquareRepulsion{1e-4, 1e-2}, n, 0.1,
                                   min_ms, repeats));
  }

  write_json(out_path, ms, min_ms, repeats);
  std::cout << "kernel      n      scalar(p/s)   batched(p/s)  speedup\n";
  for (const auto& m : ms) {
    std::printf("%-12s %-6d %-13.4g %-13.4g %.2fx\n", m.kernel.c_str(), m.n,
                m.scalar_pairs_per_sec, m.batched_pairs_per_sec, m.speedup());
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
