// Fault sweep: how perturbations move the optimal replication factor.
//
// Replays the paper's two large panels (Fig 2b: Hopper, p = 24,576,
// n = 196,608; Fig 2d: Intrepid, p = 32,768, n = 262,144) under a set of
// fault scenarios — compute stragglers, degraded links, lossy links with
// retry/backoff, and all three combined — and sweeps the replication
// factor c in each. The ideal (fault-free) series is the Fig 2 baseline;
// the degraded series show where the c that minimizes the critical path
// moves when the machine misbehaves (see EXPERIMENTS.md).
//
// With a model attached the engines take the per-step path (per-rank
// perturbation streams break the bulk shortcut), so each data point walks
// the full p x p/c^2 schedule. The sweep starts at c = 4 to keep the
// binary's runtime reasonable: at c < 4 the per-step path costs hundreds
// of millions of rank-steps per point, and both panels' optima (paper:
// c = 16 on 2b) sit well above it.
//
//   ./bench/fault_sweep --out=BENCH_faults.json --fault-seed=2013
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "obs/export.hpp"
#include "support/cli.hpp"
#include "vmpi/fault.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

struct Scenario {
  std::string name;
  vmpi::FaultConfig fault;  ///< ignored when `ideal`
  bool ideal = false;
};

std::vector<Scenario> make_scenarios(std::uint64_t seed) {
  std::vector<Scenario> out;
  out.push_back({"ideal", {}, true});
  {
    Scenario s{"stragglers", {}, false};
    s.fault.seed = seed;
    s.fault.jitter = 0.02;
    s.fault.straggler_rate = 0.05;
    s.fault.straggler_factor = 4.0;
    out.push_back(s);
  }
  {
    Scenario s{"degraded-links", {}, false};
    s.fault.seed = seed;
    s.fault.link_degrade_rate = 0.05;
    s.fault.link_degrade_factor = 4.0;
    out.push_back(s);
  }
  {
    Scenario s{"lossy", {}, false};
    s.fault.seed = seed;
    s.fault.drop_rate = 0.02;
    out.push_back(s);
  }
  {
    Scenario s{"combined", {}, false};
    s.fault.seed = seed;
    s.fault.jitter = 0.02;
    s.fault.straggler_rate = 0.05;
    s.fault.link_degrade_rate = 0.05;
    s.fault.drop_rate = 0.02;
    out.push_back(s);
  }
  return out;
}

struct DataPoint {
  std::string panel;
  std::string machine;
  int p = 0;
  std::uint64_t n = 0;
  std::string scenario;
  int c = 0;
  double total = 0.0;  ///< critical-path seconds per step
  double comm = 0.0;   ///< communication share of the critical path
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
};

/// One sweep point. Ideal runs take the bulk fast path; faulted runs attach
/// a fresh model (fresh streams, so points are independent of sweep order)
/// and fall back to the per-step schedule.
DataPoint run_point(const std::string& panel, const machine::MachineModel& m, int p,
                    std::uint64_t n, int c, const Scenario& sc, int steps) {
  core::PhantomPolicy policy({/*reassign_fraction=*/0.0, /*bulk=*/true});
  core::CaAllPairs<core::PhantomPolicy> engine({p, c, m}, policy, even_counts(n, p / c));
  std::optional<vmpi::PerturbationModel> model;
  if (!sc.ideal) {
    model.emplace(sc.fault, p);
    engine.comm().set_fault(&*model);
  }
  engine.run(steps);
  const auto rep = sim::summarize(engine.comm(), steps, "c=" + std::to_string(c), c);
  DataPoint d;
  d.panel = panel;
  d.machine = m.name;
  d.p = p;
  d.n = n;
  d.scenario = sc.name;
  d.c = c;
  d.total = rep.total();
  d.comm = rep.communication();
  d.retries = engine.comm().ledger().critical_retries();
  d.timeouts = engine.comm().ledger().critical_timeouts();
  return d;
}

void run_panel(const std::string& panel, const machine::MachineModel& m, int p,
               std::uint64_t n, int c_min, int c_max,
               const std::vector<Scenario>& scenarios, int steps,
               std::vector<DataPoint>& out) {
  print_figure_header(panel + " + faults", m.name + ", " + std::to_string(p) + " cores, " +
                                               std::to_string(n) + " particles");
  std::vector<int> cs;
  for (int c : valid_all_pairs_cs(p, c_max)) {
    if (c >= c_min) cs.push_back(c);
  }

  std::vector<ColumnSpec> cols{{"scenario", 15}};
  for (int c : cs) cols.push_back({"c=" + std::to_string(c), 11, 4});
  cols.push_back({"best", 7});
  Table table(cols);

  for (const auto& sc : scenarios) {
    std::vector<Cell> row;
    row.reserve(cols.size());
    row.emplace_back(sc.name);
    int best_c = 0;
    double best_total = 0.0;
    for (int c : cs) {
      auto d = run_point(panel, m, p, n, c, sc, steps);
      row.emplace_back(d.total);
      if (best_c == 0 || d.total < best_total) {
        best_total = d.total;
        best_c = c;
      }
      out.push_back(std::move(d));
    }
    row.emplace_back("c=" + std::to_string(best_c));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

void write_json(const std::string& path, std::uint64_t seed, int steps,
                const std::vector<DataPoint>& points) {
  obs::RunManifest manifest;
  manifest.machine = "hopper,intrepid";  // per-row `machine` names the panel's model
  manifest.set("fault_seed", seed).set("steps", steps);
  obs::BenchJsonWriter out(path, "fault_sweep", "seconds_per_step", manifest);
  for (const auto& d : points) {
    out.row([&](obs::JsonWriter& w) {
      w.kv("panel", d.panel)
          .kv("machine", d.machine)
          .kv("p", d.p)
          .kv("n", d.n)
          .kv("scenario", d.scenario)
          .kv("c", d.c)
          .kv("total", d.total)
          .kv("comm", d.comm)
          .kv("retries", d.retries)
          .kv("timeouts", d.timeouts);
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"out", "fault-seed", "steps", "c-min"});
  const std::string out_path = args.get("out", "BENCH_faults.json");
  const auto seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 2013));
  const int steps = static_cast<int>(args.get_int("steps", 1));
  const int c_min = static_cast<int>(args.get_int("c-min", 4));

  std::cout << "CA-N-Body — fault sweep: optimal replication factor under degraded machines\n"
            << "fault seed " << seed << ", " << steps << " step(s) per point\n";

  const auto scenarios = make_scenarios(seed);
  std::vector<DataPoint> points;
  run_panel("2b", machine::hopper(), 24576, 196608, c_min, 64, scenarios, steps, points);
  run_panel("2d", machine::intrepid(), 32768, 262144, c_min, 128, scenarios, steps, points);

  write_json(out_path, seed, steps, points);
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
