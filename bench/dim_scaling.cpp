// Dimensionality scaling (Section IV-C): "Communication avoidance becomes
// especially important in higher dimensions because the number of
// neighbors is exponential in the dimensionality of the problem space."
//
// The paper evaluates 1D and 2D; this bench extends the measurement to 3D
// using the same linearized-window schedule, at a fixed machine size
// (p = 4,096 * c ranks per run) and fixed cutoff fraction rc = l/4. Per
// dimension: window size, critical-path messages and bytes, time per step,
// and the factor replication saves — showing the savings *grow* with d.
#include <iostream>

#include "bench/common.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

struct Row {
  int dims;
  int c;
  sim::RunReport rep;
  int window;
};

sim::RunReport run_dim(const machine::MachineModel& m, int dims, int c, int n) {
  const int q = 4096;  // teams, constant across dims
  core::PhantomPolicy policy({0.05, true});
  core::CutoffGeometry geom = core::CutoffGeometry::make_1d(q, q / 4);
  if (dims == 2) {
    geom = core::CutoffGeometry::make_2d(64, 64, 16, 16);
  } else if (dims == 3) {
    geom = core::CutoffGeometry::make_3d(16, 16, 16, 4, 4, 4);
  }
  core::CaCutoff<core::PhantomPolicy> engine({q * c, c, m, geom, /*periodic=*/false}, policy,
                                             even_counts(static_cast<std::uint64_t>(n), q));
  engine.step();
  return sim::summarize(engine.comm(), 1, "d=" + std::to_string(dims), c);
}

}  // namespace

int main() {
  std::cout << "CA-N-Body — dimensionality scaling of the cutoff algorithm (Section IV-C)\n"
            << "4096 teams, rc = l/4 per axis, n = 65,536, Hopper model\n\n";
  const int n = 65536;
  const auto m = machine::hopper();

  Table t({{"d", 4},
           {"window", 8},
           {"c", 5},
           {"msgs/step", 10, 1},
           {"KiB/step", 10, 1},
           {"shift(s)", 11, 5},
           {"total(s)", 11, 5},
           {"vs c=1", 8, 2}});
  for (int dims : {1, 2, 3}) {
    double c1_total = 0.0;
    for (int c : {1, 4, 16}) {
      const auto rep = run_dim(m, dims, c, n);
      if (c == 1) c1_total = rep.total();
      const int window = dims == 1 ? 2049 : dims == 2 ? 33 * 33 : 9 * 9 * 9;
      t.add_row({static_cast<long long>(dims), static_cast<long long>(window),
                 static_cast<long long>(c), rep.messages, rep.bytes / 1024.0, rep.shift,
                 rep.total(), c1_total / rep.total()});
    }
  }
  t.print(std::cout);
  std::cout << "\nReading: at fixed team count the 1D window spans the most teams (rc\n"
               "covers q/4 of them per side), while higher dimensions trade window\n"
               "span per axis for exponentially more neighbors; in every dimension\n"
               "replication c cuts messages ~1/c and the benefit compounds with the\n"
               "window size. 3D runs are schedule-level (phantom payloads).\n";
  return 0;
}
