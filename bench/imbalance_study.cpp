// Load-imbalance study: probing the uniform-density assumption.
//
// The paper assumes "a uniform particle distribution for load balance"
// (Section IV-A) and attributes its cutoff inefficiency to *boundary*
// imbalance. This bench quantifies the other kind — *density* imbalance —
// by sweeping a linear density gradient and a clustered distribution
// through the CA cutoff algorithm at fixed (p, c), reporting the
// imbalance factor (max/mean rank time) and where the extra time lands
// (waits inside shift/reduce phases).
//
// Observations to expect: imbalance tracks the density skew; replication
// does NOT fix density imbalance (every replica of a heavy team is heavy);
// a periodic box removes the boundary component but not the density one.
#include <iostream>

#include "bench/common.hpp"
#include "decomp/partition.hpp"
#include "particles/init.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

std::vector<core::PhantomBlock> counts_from(const particles::Block& sample, int q) {
  const auto box = particles::Box::reflective_1d(1.0);
  const auto blocks = decomp::split_spatial_1d(sample, box, q);
  std::vector<core::PhantomBlock> out;
  out.reserve(blocks.size());
  for (const auto& b : blocks) out.push_back({b.size()});
  return out;
}

sim::RunReport run_with_counts(std::vector<core::PhantomBlock> counts, int c,
                               const std::string& label, bool periodic) {
  const int q = static_cast<int>(counts.size());
  const int p = q * c;
  const int m = core::window_radius_teams(0.25, 1.0, q);
  core::PhantomPolicy policy({0.05, true});
  core::CaCutoff<core::PhantomPolicy> engine(
      {p, c, machine::hopper(), core::CutoffGeometry::make_1d(q, m), periodic}, policy,
      std::move(counts));
  engine.step();
  return sim::summarize(engine.comm(), 1, label, c);
}

}  // namespace

int main() {
  std::cout << "CA-N-Body — load imbalance vs particle distribution (1D cutoff, rc=l/4)\n"
            << "q = 2048 teams, n = 65,536, Hopper model\n\n";
  const int n = 65536;
  const int q = 2048;
  const auto box1d = particles::Box::reflective_1d(1.0);

  struct Workload {
    std::string name;
    particles::Block sample;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"lattice (uniform)", particles::init_lattice(n, box1d, 0.9, 1)});
  workloads.push_back({"iid uniform", particles::init_uniform(n, box1d, 1)});
  workloads.push_back({"gradient 0.5", particles::init_gradient(n, box1d, 0.5, 1)});
  workloads.push_back({"gradient 1.5", particles::init_gradient(n, box1d, 1.5, 1)});
  workloads.push_back({"8 clusters", particles::init_clusters(n, box1d, 8, 0.03, 1)});

  for (const bool periodic : {false, true}) {
    std::cout << banner(periodic ? "Periodic box (no boundary imbalance)"
                                 : "Reflective box (boundary + density imbalance)")
              << "\n\n";
    Table t({{"workload", 20},
             {"c", 5},
             {"total(s)", 11, 5},
             {"compute", 11, 5},
             {"comm", 11, 5},
             {"imbalance", 10, 3}});
    for (const auto& w : workloads) {
      for (int c : {1, 8}) {
        const auto rep = run_with_counts(counts_from(w.sample, q), c, w.name, periodic);
        t.add_row({w.name, static_cast<long long>(c), rep.total(), rep.compute,
                   rep.communication(), rep.imbalance});
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Reading: density imbalance (gradient, clusters) inflates the imbalance\n"
               "factor and the critical-path total regardless of c — replication\n"
               "replicates heavy teams. The paper's uniform-density assumption is thus\n"
               "load-bearing; dynamic re-partitioning would be needed for skewed\n"
               "workloads (beyond the paper's and this reproduction's scope).\n";
  return 0;
}
