// Bounds validation table (Equations 2, 3, 5): measured critical-path
// messages (S) and particle-words (W) from the engines' ledgers, compared
// against (a) the paper's asymptotic cost model for the algorithm and
// (b) the communication lower bound at the same memory size.
//
// "x bound" is measured / lower-bound: communication optimality means this
// ratio stays bounded by a small constant across the whole sweep while the
// bound itself falls as 1/c (W) and 1/c^2 (S).
#include <iostream>

#include <cmath>

#include "bench/common.hpp"
#include "bounds/lower_bounds.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

void all_pairs_table() {
  std::cout << "\n" << banner("All-pairs: measured vs Eq 5 model vs Eq 2 lower bound") << "\n";
  const int p = 4096;
  const std::uint64_t n = 65536;
  std::cout << "p = " << p << ", n = " << n << ", 52-byte particles\n\n";
  Table t({{"c", 5},
           {"S meas", 9, 1},
           {"S model", 9, 1},
           {"S bound", 9, 1},
           {"S/bound", 8, 2},
           {"W meas", 11, 0},
           {"W model", 11, 0},
           {"W bound", 11, 0},
           {"W/bound", 8, 2}});
  for (int c : valid_all_pairs_cs(p, 64)) {
    core::PhantomPolicy policy({0.0, true});
    core::CaAllPairs<core::PhantomPolicy> engine({p, c, machine::hopper()}, policy,
                                                 even_counts(n, p / c));
    engine.step();
    const auto rep =
        bounds::check_all_pairs_optimality(engine.comm().ledger(), 1, n, p, c);
    const auto model = bounds::ca_all_pairs_cost(n, p, c);
    t.add_row({static_cast<long long>(c), rep.measured.messages, model.messages,
               rep.bound.messages, rep.message_ratio, rep.measured.words, model.words,
               rep.bound.words, rep.word_ratio});
  }
  t.print(std::cout);
}

void cutoff_table() {
  std::cout << "\n" << banner("1D cutoff: measured vs Section IV-B model vs Eq 3 bound") << "\n";
  const int p = 4096;
  const int n = 65536;
  std::cout << "p = " << p << ", n = " << n << ", rc = l/4 (periodic, balanced)\n\n";
  Table t({{"c", 5},
           {"m", 7},
           {"S meas", 9, 1},
           {"S model", 9, 1},
           {"S/bound", 8, 2},
           {"W meas", 11, 0},
           {"W model", 11, 0},
           {"W/bound", 8, 2}});
  for (int c : {1, 2, 4, 8, 16, 32}) {
    const int q = p / c;
    const int m = q / 4;
    core::PhantomPolicy policy({0.0, true});
    core::CaCutoff<core::PhantomPolicy> engine(
        {p, c, machine::hopper(), core::CutoffGeometry::make_1d(q, m), /*periodic=*/true},
        policy, even_counts(n, q));
    engine.step();
    const double per_team = static_cast<double>(n) / q;
    const double k = (2.0 * m + 1.0) * per_team;  // window interactions per particle
    const auto rep = bounds::check_cutoff_optimality(engine.comm().ledger(), 1, n, p, c, k);
    const auto model = bounds::ca_cutoff_cost(n, p, c, m);
    t.add_row({static_cast<long long>(c), static_cast<long long>(m), rep.measured.messages,
               model.messages, rep.message_ratio, rep.measured.words, model.words,
               rep.word_ratio});
  }
  t.print(std::cout);
}

void baseline_table() {
  std::cout << "\n" << banner("Baselines vs CA extremes (Section II-B degeneracies)") << "\n\n";
  const int p = 1024;
  const std::uint64_t n = 16384;
  Table t({{"algorithm", 22}, {"S meas", 9, 1}, {"W meas (particles)", 18, 0}});
  {
    core::PhantomPolicy policy({0.0, true});
    core::CaAllPairs<core::PhantomPolicy> ca({p, 1, machine::hopper()}, policy,
                                             even_counts(n, p));
    ca.step();
    t.add_row({std::string("ca c=1 (== ring)"),
               static_cast<double>(ca.comm().ledger().critical_messages()),
               static_cast<double>(ca.comm().ledger().critical_bytes()) / 52.0});
  }
  {
    core::PhantomPolicy policy({0.0, true});
    core::CaAllPairs<core::PhantomPolicy> ca({p, 32, machine::hopper()}, policy,
                                             even_counts(n, 32));
    ca.step();
    t.add_row({std::string("ca c=32 (force-like)"),
               static_cast<double>(ca.comm().ledger().critical_messages()),
               static_cast<double>(ca.comm().ledger().critical_bytes()) / 52.0});
  }
  const auto pd = bounds::particle_decomposition_cost(static_cast<double>(n), p);
  const auto fd = bounds::force_decomposition_cost(static_cast<double>(n), p);
  t.add_row({std::string("particle decomp (model)"), pd.messages, pd.words});
  t.add_row({std::string("force decomp (model)"), fd.messages, fd.words});
  t.print(std::cout);
}

void related_work_table() {
  std::cout << "\n"
            << banner("Related work: each method meets Eq 3 at its own memory point")
            << "\n\n";
  // 1D cutoff spanning m0 = 64 ranks, p = 32768, n = 2^20. Section II-C/D:
  // the spatial decomposition is optimal at M = n/p, neutral territory at
  // M = n/sqrt(p); the CA algorithm interpolates with M = c n / p.
  const double n = 1 << 20;
  const double p = 32768;
  const double m0 = 64;                   // ranks spanned by rc at c=1
  const double k = n * (2 * m0 + 1) / p;  // interactions per particle
  Table t({{"method", 26},
           {"M/rank", 9, 0},
           {"S", 9, 1},
           {"W", 11, 0},
           {"W bound", 11, 0},
           {"W/bound", 8, 2}});
  auto bound_w = [&](double mem) { return bounds::cutoff_lower_bound(n, p, mem, k).words; };
  {
    const double mem = n / p;
    const auto sp = bounds::spatial_decomposition_cost(n, p, 2 * m0, 1);
    t.add_row({std::string("spatial decomposition"), mem, sp.messages, sp.words, bound_w(mem),
               sp.words / bound_w(mem)});
  }
  for (double c : {2.0, 8.0, 32.0}) {
    const double m = m0 / c;  // window shrinks in teams as c grows
    const double mem = bounds::memory_per_rank(n, p, c);
    const auto ca = bounds::ca_cutoff_cost(n, p, c, m);
    t.add_row({std::string("ca cutoff (c=" + std::to_string(static_cast<int>(c)) + ")"), mem,
               ca.messages, ca.words, bound_w(mem), ca.words / bound_w(mem)});
  }
  {
    const double mem = n / std::sqrt(p);
    const auto nt = bounds::neutral_territory_cost(n, p, m0, 1);
    t.add_row({std::string("neutral territory (Shaw)"), mem, nt.messages, nt.words,
               bound_w(mem), nt.words / bound_w(mem)});
  }
  t.print(std::cout);
  std::cout << "\n  Every row sits within a small constant of the Eq 3 lower bound at its\n"
               "  own memory size; the CA algorithm is the only one that spans the whole\n"
               "  memory axis with one tunable parameter (the paper's contribution).\n";
}

}  // namespace

int main() {
  std::cout << "CA-N-Body — communication-optimality validation tables\n";
  all_pairs_table();
  cutoff_table();
  baseline_table();
  related_work_table();
  std::cout << "\nReading: S/bound and W/bound stay O(1) across the sweep (the log-factor\n"
               "slack in S at large c comes from tree collectives) while the bound itself\n"
               "drops as c^-2 and c^-1 — the paper's 'lower lower bound' via replication.\n";
  return 0;
}
