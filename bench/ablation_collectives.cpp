// Ablation of the design choices DESIGN.md calls out:
//
//  1. Collective model: ideal log-tree (the paper's *analytical* model)
//     vs the saturating tree (calibrated to the paper's *measurements*).
//     Under the ideal model the best c is the largest; under the
//     saturating model an interior c wins — the paper's central empirical
//     finding ("c should be treated as a tuning parameter").
//  2. Torus-aware broadcast-shifts on Intrepid (Section III-C): exploiting
//     bidirectional links halves shift bandwidth cost.
//  3. Replication as memory: the c sweep's per-rank memory footprint
//     (Equation 4) against its communication time — the memory/
//     communication trade at the heart of the paper.
#include <iomanip>
#include <iostream>

#include "bench/common.hpp"

namespace {

using namespace canb;
using namespace canb::bench;

void collective_model_ablation() {
  std::cout << "\n" << banner("Ablation 1: collective model (Hopper, p=24576, n=196608)")
            << "\n\n";
  Table t({{"c", 5},
           {"ideal total", 12, 5},
           {"saturating total", 17, 5},
           {"ideal comm", 12, 5},
           {"saturating comm", 16, 5}});
  const int p = 24576;
  const std::uint64_t n = 196608;
  int best_ideal = 0, best_sat = 0;
  double best_ideal_t = 1e30, best_sat_t = 1e30;
  for (int c : valid_all_pairs_cs(p, 64)) {
    const auto ideal = run_ca_all_pairs(machine::with_ideal_collectives(machine::hopper()), p,
                                        c, n);
    const auto sat = run_ca_all_pairs(machine::hopper(), p, c, n);
    if (ideal.total() < best_ideal_t) {
      best_ideal_t = ideal.total();
      best_ideal = c;
    }
    if (sat.total() < best_sat_t) {
      best_sat_t = sat.total();
      best_sat = c;
    }
    t.add_row({static_cast<long long>(c), ideal.total(), sat.total(), ideal.communication(),
               sat.communication()});
  }
  t.print(std::cout);
  std::cout << "\n  ideal model:      best c = " << best_ideal
            << " (monotone: maximize replication, as the theory suggests)\n"
            << "  saturating model: best c = " << best_sat
            << " (interior optimum: c is a tuning parameter, as measured)\n";
}

void torus_shift_ablation() {
  std::cout << "\n"
            << banner("Ablation 2: topology-aware broadcast-shifts (Intrepid, p=32768)")
            << "\n\n";
  Table t({{"c", 5}, {"p2p shifts", 12, 5}, {"bidir shifts", 12, 5}, {"speedup", 9, 3}});
  const int p = 32768;
  const std::uint64_t n = 262144;
  for (int c : valid_all_pairs_cs(p, 16)) {
    const auto plain = run_ca_all_pairs(machine::intrepid(false, false), p, c, n);
    const auto bidir = run_ca_all_pairs(machine::intrepid(false, true), p, c, n);
    t.add_row({static_cast<long long>(c), plain.shift, bidir.shift,
               plain.shift > 0 ? plain.shift / bidir.shift : 1.0});
  }
  t.print(std::cout);
  std::cout << "\n  Section III-C: replacing point-to-point shifts with broadcasts across\n"
               "  the rows exploits torus bidirectionality — twice the shift bandwidth.\n";
}

void memory_tradeoff_table() {
  std::cout << "\n" << banner("Ablation 3: the memory/communication trade (Equation 4)")
            << "\n\n";
  const int p = 24576;
  const std::uint64_t n = 196608;
  Table t({{"c", 5},
           {"copies of S", 12},
           {"MiB/rank", 10, 3},
           {"comm (s)", 11, 5},
           {"comm x less", 12, 2}});
  double base_comm = 0.0;
  for (int c : valid_all_pairs_cs(p, 64)) {
    const auto rep = run_ca_all_pairs(machine::hopper(), p, c, n);
    const double mem_particles = static_cast<double>(c) * static_cast<double>(n) / p;
    const double mib = mem_particles * 52.0 / (1024.0 * 1024.0);
    if (c == 1) base_comm = rep.communication();
    t.add_row({static_cast<long long>(c), std::string(std::to_string(c) + "x"), mib,
               rep.communication(), base_comm / rep.communication()});
  }
  t.print(std::cout);
}

void hop_latency_ablation() {
  std::cout << "\n" << banner("Ablation 4: hop-aware torus latency (skew vs shift distance)")
            << "\n\n";
  // With per-hop latency enabled, the skew (row k jumps k columns) costs
  // more than the stride-c shifts — quantifying why topology-aware
  // embeddings matter on real tori.
  auto m = machine::hopper();
  m.alpha_hop = 5e-7;  // ~0.5 us per hop
  const int p = 4096;
  const std::uint64_t n = 32768;
  Table t({{"c", 5}, {"skew(s)", 11, 6}, {"shift(s)", 11, 6}, {"total(s)", 11, 5}});
  for (int c : valid_all_pairs_cs(p, 32)) {
    const auto rep = run_ca_all_pairs(m, p, c, n, 1);
    t.add_row({static_cast<long long>(c), rep.skew, rep.shift, rep.total()});
  }
  t.print(std::cout);
  std::cout << "\n  The skew grows with c (row k travels k columns) while shifts stay\n"
               "  neighbor-local; on a real torus the skew is the embedding-sensitive\n"
               "  step. (Hop charging is off in the headline figures: alpha_hop = 0.)\n";
}

}  // namespace

int main() {
  std::cout << "CA-N-Body — ablation benches for the design choices in DESIGN.md\n";
  collective_model_ablation();
  torus_shift_ablation();
  memory_tradeoff_table();
  hop_latency_ablation();
  return 0;
}
