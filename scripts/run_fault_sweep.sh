#!/usr/bin/env bash
# Build the fault-sweep bench with the native-arch bench flags and
# regenerate BENCH_faults.json at the repo root.
#
# Usage:
#     scripts/run_fault_sweep.sh [build-dir] [extra fault_sweep args...]
#
# The bench replays the paper's Fig 2b/2d panels under straggler, degraded-
# link, lossy, and combined fault scenarios (a fixed --fault-seed, so the
# JSON is reproducible) and records the per-c critical path plus retry and
# timeout counts. CANB_NATIVE_ARCH affects bench targets only, so the
# library/tests in the build dir stay portable.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"
shift || true

cmake -B "${build_dir}" -S "${repo_root}" -DCANB_NATIVE_ARCH=ON
cmake --build "${build_dir}" --target fault_sweep -j "$(nproc)"

"${build_dir}/bench/fault_sweep" \
    --out="${repo_root}/BENCH_faults.json" "$@"
