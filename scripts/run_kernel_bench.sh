#!/usr/bin/env bash
# Build the kernel-engine throughput bench with the native-arch bench flags
# and regenerate BENCH_kernels.json at the repo root.
#
# Usage:
#     scripts/run_kernel_bench.sh [build-dir] [extra kernel_engines_bench args...]
#
# The bench compares Scalar vs Batched pairs/sec for every force kernel at
# n in {64, 256, 1024, 4096}. CANB_NATIVE_ARCH affects bench targets only,
# so the library/tests in the build dir stay portable.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"
shift || true

cmake -B "${build_dir}" -S "${repo_root}" -DCANB_NATIVE_ARCH=ON
cmake --build "${build_dir}" --target kernel_engines_bench -j "$(nproc)"

"${build_dir}/bench/kernel_engines_bench" \
    --out="${repo_root}/BENCH_kernels.json" "$@"
