#!/usr/bin/env python3
"""Replot the paper figures from bench CSV output.

Usage:
    mkdir -p out && CANB_CSV_DIR=out ./build/bench/fig2_allpairs_replication
    CANB_CSV_DIR=out ./build/bench/fig6_cutoff_replication
    python3 scripts/plot_figures.py out

Produces one stacked-bar PNG per panel CSV (matplotlib required), in the
style of the paper's Figures 2 and 6: execution time per timestep broken
into Computation / Broadcast / Skew / Shift / Reduce / Re-assign, one bar
per replication factor.

BENCH_*.json files in the directory are also summarized. Both schemas are
understood: the legacy hand-rolled v1 layout ({"results": [...]}) and the
versioned v2 layout written by obs::BenchJsonWriter ({"schema_version": 2,
"manifest": {...}, "rows": [...]}).
"""
import csv
import json
import sys
from pathlib import Path

PHASES = ["compute", "bcast", "skew", "shift", "reduce", "reassign"]
COLORS = {
    "compute": "#4878d0",
    "bcast": "#ee854a",
    "skew": "#6acc64",
    "shift": "#d65f5f",
    "reduce": "#956cb4",
    "reassign": "#8c613c",
}


def plot_panel(csv_path: Path, out_dir: Path) -> None:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    with open(csv_path) as f:
        rows = list(csv.DictReader(f))
    if not rows:
        print(f"  {csv_path.name}: empty, skipped")
        return

    labels = [r["label"] for r in rows]
    fig, ax = plt.subplots(figsize=(0.9 + 0.7 * len(rows), 3.6))
    bottom = [0.0] * len(rows)
    for phase in PHASES:
        vals = [float(r.get(phase, 0) or 0) for r in rows]
        if not any(vals):
            continue
        ax.bar(labels, vals, bottom=bottom, label=phase, color=COLORS[phase], width=0.7)
        bottom = [b + v for b, v in zip(bottom, vals)]
    ax.set_ylabel("Execution time per timestep (s)")
    ax.set_xlabel("Replication factor")
    ax.set_title(csv_path.stem)
    ax.legend(fontsize=8)
    ax.margins(y=0.1)
    plt.xticks(rotation=45, ha="right", fontsize=8)
    plt.tight_layout()
    out = out_dir / f"{csv_path.stem}.png"
    plt.savefig(out, dpi=140)
    plt.close(fig)
    print(f"  {out}")


def load_bench(path: Path):
    """Loads a bench JSON file, normalizing v1 and v2 schemas.

    Returns (meta, rows): meta has "bench", "unit", "schema_version", and
    "manifest" keys (manifest is {} for v1 files, which predate it); rows
    is the flat list of result dicts from "rows" (v2) or "results" (v1).
    """
    with open(path) as f:
        doc = json.load(f)
    version = int(doc.get("schema_version", 1))
    meta = {
        "bench": doc.get("bench", path.stem),
        "unit": doc.get("unit", ""),
        "schema_version": version,
        "manifest": doc.get("manifest", {}) if version >= 2 else {},
    }
    rows = doc.get("rows" if version >= 2 else "results", [])
    return meta, rows


def summarize_bench(path: Path) -> None:
    meta, rows = load_bench(path)
    machine = meta["manifest"].get("machine", "")
    extra = f", machine={machine}" if machine else ""
    print(
        f"  {path.name}: {meta['bench']} v{meta['schema_version']}, "
        f"{len(rows)} rows in {meta['unit']}{extra}"
    )


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    csv_dir = Path(sys.argv[1])
    csvs = sorted(csv_dir.glob("fig*.csv"))
    benches = sorted(csv_dir.glob("BENCH_*.json"))
    if not csvs and not benches:
        print(f"no fig*.csv or BENCH_*.json files in {csv_dir}; "
              "run the benches with CANB_CSV_DIR set")
        return 1
    if benches:
        print(f"found {len(benches)} bench result files:")
        for path in benches:
            summarize_bench(path)
    if csvs:
        print(f"plotting {len(csvs)} panels:")
        for path in csvs:
            plot_panel(path, csv_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
