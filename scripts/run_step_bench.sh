#!/usr/bin/env bash
# Build the end-to-end step-throughput bench with the native-arch bench
# flags and regenerate BENCH_step.json at the repo root.
#
# Usage:
#     scripts/run_step_bench.sh [build-dir] [extra step_bench args...]
#
# The bench drives sim::Simulation (full timestep: staging collectives,
# force sweeps, reduce, integrate, re-assign) for the cutoff and all-pairs
# configurations at both kernel engines and 1/4 host threads, and records
# host steps/sec per case. It also runs the socket-mesh arm first
# (back-to-back lockstep vs owner-computes over forked process groups
# {2,4}; pass --socket-steps=0 to skip it). CANB_NATIVE_ARCH affects bench
# targets only, so the library/tests in the build dir stay portable.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"
shift || true

cmake -B "${build_dir}" -S "${repo_root}" -DCANB_NATIVE_ARCH=ON
cmake --build "${build_dir}" --target step_bench -j "$(nproc)"

"${build_dir}/bench/step_bench" \
    --out="${repo_root}/BENCH_step.json" "$@"
