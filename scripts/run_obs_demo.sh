#!/usr/bin/env bash
# One-command live-observability demo: run a 4-process socket-mesh
# simulation with the scrape server on, curl the live endpoints mid-run,
# and leave the full artifact set (metrics JSON + Prometheus text, flight
# recorder) in ./obs-demo/.
#
# Usage:
#     scripts/run_obs_demo.sh [build-dir] [port]
#
# Requires only a built tree (examples/run_simulation) and curl. The run
# is small (n=256, 400 steps) but long enough to scrape while it is still
# stepping; --serve-linger keeps the server up after the last step so the
# final whole-mesh scrape is deterministic. docs/OBSERVABILITY.md walks
# through what each endpoint serves.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
port="${2:-9464}"
sim="${build_dir}/examples/run_simulation"
out_dir="${repo_root}/obs-demo"

if [[ ! -x "${sim}" ]]; then
    echo "run_obs_demo: ${sim} not built (cmake --build ${build_dir})" >&2
    exit 1
fi
mkdir -p "${out_dir}"

"${sim}" --method=ca-cutoff --cutoff=0.12 --machine=hopper \
    --workload=plummer --n=256 --p=32 --c=2 --steps=400 \
    --transport=socket --transport-groups=4 \
    --obs-level=metrics --serve="${port}" --serve-linger=8 \
    --metrics-out="${out_dir}/metrics.json" \
    --series-out="${out_dir}/series.json" &
sim_pid=$!

url="http://127.0.0.1:${port}"
for _ in $(seq 1 100); do
    curl -sf "${url}/healthz" -o /dev/null 2> /dev/null && break
    sleep 0.1
done

echo "== live /healthz (mid-run) =="
curl -sf "${url}/healthz"; echo
echo "== live /metrics: whole-mesh transport counters =="
curl -sf "${url}/metrics" | grep -E '^canb_transport_frames_sent_total' || true
curl -sf "${url}/metrics" > "${out_dir}/scrape.prom"

wait "${sim_pid}"

echo "== final flight-recorder summary =="
python3 - "${out_dir}/series.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
samples = doc["samples"]
walls = sorted(s["wall_seconds"] for s in samples)
print(f"steps recorded : {doc['recorded_total']} (ring keeps {len(samples)})")
print(f"median step    : {doc['median_wall_seconds'] * 1e3:.3f} ms")
print(f"slowest step   : {walls[-1] * 1e3:.3f} ms")
print(f"stragglers     : {len(doc['stragglers'])} (>{doc['straggler_factor']}x median)")
print(f"pairs computed : {sum(s['pairs_computed'] for s in samples)}")
EOF

"${repo_root}/scripts/check_prometheus.py" "${out_dir}/scrape.prom"
echo "artifacts in ${out_dir}/: metrics.json metrics.prom series.json scrape.prom"
