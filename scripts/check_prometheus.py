#!/usr/bin/env python3
"""Lint a Prometheus text-exposition document scraped from /metrics.

A standalone mirror of obs::validate_prometheus (src/obs/export.cpp) so CI
can validate what curl actually received over HTTP, with no canb binary in
the loop. Checks the structural invariants a real Prometheus server relies
on:

  * every sample belongs to a family declared with # TYPE (histogram
    samples resolve through their _bucket/_sum/_count suffixes);
  * # HELP lines are immediately followed by the matching # TYPE;
  * counter values are non-negative numbers;
  * histogram buckets carry an `le` label, are cumulative (non-decreasing
    in file order), include a terminal +Inf bucket, and agree with _count.

Usage:
    scripts/check_prometheus.py metrics.txt         # file
    curl -s localhost:9464/metrics | scripts/check_prometheus.py -

Exits non-zero on the first violation, printing the offending line.
"""
import sys


def split_sample(line):
    """Return (name, labels-dict, value-string) for a sample line."""
    brace = line.find("{")
    if brace < 0:
        parts = line.split()
        if len(parts) != 2:
            raise ValueError("expected '<name> <value>'")
        return parts[0], {}, parts[1]
    name = line[:brace]
    close = line.rfind("}")
    if close < brace:
        raise ValueError("unbalanced label braces")
    labels = {}
    block = line[brace + 1 : close]
    while block:
        eq = block.find("=")
        if eq < 0 or len(block) < eq + 2 or block[eq + 1] != '"':
            raise ValueError("malformed label pair")
        key = block[:eq]
        end = block.find('"', eq + 2)
        if end < 0:
            raise ValueError("unterminated label value")
        labels[key] = block[eq + 2 : end]
        block = block[end + 1 :]
        if block.startswith(","):
            block = block[1:]
    value = line[close + 1 :].strip()
    if not value:
        raise ValueError("sample without a value")
    return name, labels, value


def as_number(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage


def base_family(name, typed):
    """Resolve a sample name to its declared family (histogram suffixes)."""
    if name in typed:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in typed:
            return name[: -len(suffix)]
    return None


def check(text):
    """Return an error string, or None if the document is well-formed."""
    typed = {}  # family -> type
    pending_help = None
    # family + sorted non-le labels -> [last cumulative, inf cumulative]
    buckets = {}
    counts = {}  # same key -> value of _count sample

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        loc = f"line {lineno}: {raw!r}: "
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # arbitrary comment
            kind, family = parts[1], parts[2]
            if kind == "HELP":
                if pending_help is not None:
                    return loc + "HELP not followed by its TYPE"
                pending_help = family
                continue
            if pending_help is not None and pending_help != family:
                return loc + f"HELP for {pending_help} followed by TYPE for {family}"
            pending_help = None
            if family in typed:
                return loc + "duplicate TYPE declaration"
            if len(parts) < 4 or parts[3] not in ("counter", "gauge", "histogram"):
                return loc + "unknown metric type"
            typed[family] = parts[3]
            continue
        if pending_help is not None:
            return loc + "HELP not followed by its TYPE"
        try:
            name, labels, value_text = split_sample(line)
            value = as_number(value_text)
        except ValueError as err:
            return loc + str(err)
        family = base_family(name, typed)
        if family is None:
            return loc + "sample without a TYPE declaration"
        kind = typed[family]
        if kind == "counter" and value < 0:
            return loc + "negative counter"
        if kind != "histogram":
            continue
        if name == family:
            return loc + "bare sample of a histogram family"
        series = family + "|" + ",".join(
            f'{k}="{v}"' for k, v in sorted(labels.items()) if k != "le"
        )
        if name.endswith("_bucket"):
            if "le" not in labels:
                return loc + "histogram bucket without an le label"
            state = buckets.setdefault(series, [None, None])
            if state[1] is not None:
                return loc + "bucket after the +Inf bucket"
            if state[0] is not None and value < state[0]:
                return loc + "non-monotone cumulative bucket"
            state[0] = value
            if labels["le"] == "+Inf":
                state[1] = value
        elif name.endswith("_count"):
            counts[series] = value
    if pending_help is not None:
        return f"trailing HELP for {pending_help} with no TYPE"
    for series, (_, inf_cum) in buckets.items():
        family = series.split("|", 1)[0]
        if inf_cum is None:
            return f"histogram series of {family} has no +Inf bucket"
        if series in counts and counts[series] != inf_cum:
            return f"{family}_count disagrees with its +Inf bucket"
    if not typed:
        return "empty document: no metric families"
    return None


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    source = sys.stdin if sys.argv[1] == "-" else open(sys.argv[1])
    with source:
        text = source.read()
    err = check(text)
    if err is not None:
        sys.exit(f"check_prometheus: {err}")
    families = sum(1 for line in text.splitlines() if line.startswith("# TYPE "))
    print(f"check_prometheus: OK ({families} families)")


if __name__ == "__main__":
    main()
